"""Integration tests: end-to-end training + evaluation across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DEKGILP,
    Evaluator,
    ModelConfig,
    Trainer,
    TrainingConfig,
    available_models,
    build_benchmark,
    train_model,
)
from repro.eval.case_study import case_study
from repro.eval.complexity import measure_complexity
from repro.eval.reporting import format_table, results_to_rows


@pytest.fixture(scope="module")
def trained_dekg_ilp(request):
    dataset = build_benchmark("fb15k-237", "EQ", seed=1, scale=0.25)
    config = ModelConfig(embedding_dim=16, gnn_hidden_dim=16, edge_dropout=0.0)
    training = TrainingConfig(epochs=2, batch_size=16, contrastive_examples=1, seed=0)
    model = DEKGILP(dataset.num_relations, config=config, seed=0)
    Trainer(model, dataset.train_graph, training).fit()
    return dataset, model


class TestEndToEnd:
    def test_training_and_evaluation(self, trained_dekg_ilp):
        dataset, model = trained_dekg_ilp
        evaluator = Evaluator(dataset, max_candidates=20, seed=0)
        result = evaluator.evaluate(model, model_name="DEKG-ILP")
        summary = result.summary()
        for scope in ("overall", "enclosing", "bridging"):
            assert 0.0 <= summary[scope]["MRR"] <= 1.0
            assert summary[scope]["Hits@1"] <= summary[scope]["Hits@10"]

    def test_model_beats_random_scoring(self, trained_dekg_ilp):
        dataset, model = trained_dekg_ilp

        class RandomModel:
            name = "Random"

            def set_context(self, graph):
                self._rng = np.random.default_rng(0)

            def score_many(self, triples):
                return self._rng.random(len(triples))

            def num_parameters(self):
                return 0

        evaluator = Evaluator(dataset, max_candidates=20, seed=0)
        trained = evaluator.evaluate(model).metric("MRR")
        random_result = evaluator.evaluate(RandomModel()).metric("MRR")
        assert trained > random_result

    def test_case_study_pipeline(self, trained_dekg_ilp):
        dataset, model = trained_dekg_ilp
        evaluator = Evaluator(dataset, max_candidates=5, seed=0)
        model.set_context(evaluator.context_graph)
        bridging = dataset.bridging_test()[0]
        enclosing = dataset.enclosing_test()[0]
        bridging_case = case_study(model, bridging)
        enclosing_case = case_study(model, enclosing)
        assert bridging_case.semantic_map.shape == (8, 8)
        assert enclosing_case.topological_map.shape == (8, 8)
        # Semantic signal exists for bridging links even when topology is disconnected.
        assert bridging_case.mean_magnitude()["semantic"] > 0

    def test_complexity_measurement(self, trained_dekg_ilp):
        dataset, model = trained_dekg_ilp
        report = measure_complexity(model, dataset.test_triples[:5],
                                    context=dataset.split.evaluation_graph())
        assert report.num_parameters == model.num_parameters()
        assert report.links_scored == 5

    def test_reporting_pipeline(self, trained_dekg_ilp):
        dataset, model = trained_dekg_ilp
        evaluator = Evaluator(dataset, max_candidates=5, seed=0)
        rows = results_to_rows([evaluator.evaluate(model, model_name="DEKG-ILP")])
        table = format_table(rows)
        assert "DEKG-ILP" in table


class TestTrainModelHelper:
    def test_available_models_cover_paper(self):
        models = available_models()
        for expected in ("DEKG-ILP", "DEKG-ILP-R", "DEKG-ILP-C", "DEKG-ILP-N",
                         "TransE", "RotatE", "ConvE", "GEN", "RuleN", "Grail", "TACT"):
            assert expected in models

    def test_unknown_model_rejected(self, small_benchmark):
        with pytest.raises(KeyError):
            train_model("NotAModel", small_benchmark)

    def test_train_baseline_and_evaluate(self, small_benchmark):
        model = train_model("TransE", small_benchmark, epochs=1, embedding_dim=8, seed=0)
        result = Evaluator(small_benchmark, max_candidates=10, seed=0).evaluate(model)
        assert 0.0 <= result.metric("MRR") <= 1.0

    def test_train_ablation_variant(self, small_benchmark):
        model = train_model("DEKG-ILP-R", small_benchmark, epochs=1, embedding_dim=8, seed=0)
        assert model.clrm is None
        result = Evaluator(small_benchmark, max_candidates=10, seed=0).evaluate(model)
        assert 0.0 <= result.metric("MRR") <= 1.0

    def test_ablation_c_disables_contrastive_weight(self, small_benchmark):
        model = train_model("DEKG-ILP-C", small_benchmark, epochs=1, embedding_dim=8, seed=0)
        assert model.clrm is not None   # CLRM present, only the contrastive loss is off

    def test_ablation_n_uses_grail_labeling(self, small_benchmark):
        model = train_model("DEKG-ILP-N", small_benchmark, epochs=1, embedding_dim=8, seed=0)
        assert model.gsm.improved_labeling is False
