"""Tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import DEKGILP
from repro.core.persistence import (Checkpointable, load_model, model_from_bytes,
                                    model_to_bytes, save_model)
from repro.core.trainer import Trainer
from repro.experiment import train_model
from repro.kg.triple import Triple
from repro.registry import model_names


@pytest.fixture
def trained_model(tiny_graph):
    config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, edge_dropout=0.0)
    training = TrainingConfig(epochs=1, batch_size=4, contrastive_examples=1, seed=0)
    model = DEKGILP(3, config=config, seed=0)
    Trainer(model, tiny_graph, training).fit()
    return model


class TestPersistence:
    def test_roundtrip_preserves_parameters(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        restored = load_model(path)
        original_state = trained_model.state_dict()
        restored_state = restored.state_dict()
        assert set(original_state) == set(restored_state)
        for name, value in original_state.items():
            np.testing.assert_array_equal(value, restored_state[name])

    def test_roundtrip_preserves_scores(self, trained_model, tiny_graph, tmp_path):
        path = save_model(trained_model, tmp_path / "model")
        restored = load_model(path)
        trained_model.set_context(tiny_graph)
        restored.set_context(tiny_graph)
        trained_model.eval()
        for triple in (Triple(0, 0, 1), Triple(0, 1, 2), Triple(3, 0, 4)):
            assert restored.score(triple) == pytest.approx(trained_model.score(triple))

    def test_suffix_added_automatically(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_config_restored(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        restored = load_model(path)
        assert restored.config == trained_model.config
        assert restored.num_relations == trained_model.num_relations

    def test_ablation_variant_roundtrip(self, tiny_graph, tmp_path):
        config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, use_semantic=False,
                             edge_dropout=0.0)
        model = DEKGILP(3, config=config, seed=0)
        restored = load_model(save_model(model, tmp_path / "variant.npz"))
        assert restored.clrm is None
        assert restored.gsm is not None

    def test_invalid_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, weights=np.ones(3))
        with pytest.raises(ValueError):
            load_model(bogus)

    def test_loaded_model_is_in_eval_mode(self, trained_model, tmp_path):
        restored = load_model(save_model(trained_model, tmp_path / "model.npz"))
        assert not restored.training


class TestLegacyFormatV1:
    """Checkpoints written before the registry (format v1) still restore."""

    def _write_v1(self, model, path):
        import dataclasses
        import json

        header = {
            "format_version": 1,
            "num_relations": model.num_relations,
            "config": dataclasses.asdict(model.config),
            "class": "DEKGILP",
        }
        arrays = dict(model.state_dict())
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        return path

    def test_v1_checkpoint_restores_scores(self, trained_model, tiny_graph, tmp_path):
        path = self._write_v1(trained_model, tmp_path / "legacy.npz")
        restored = load_model(path)
        assert restored.seed is None  # v1 never recorded a seed
        trained_model.eval()
        trained_model.set_context(tiny_graph)
        restored.set_context(tiny_graph)
        triples = [Triple(0, 0, 1), Triple(3, 0, 4)]
        np.testing.assert_array_equal(trained_model.score_many(triples),
                                      restored.score_many(triples))

    def test_v1_checkpoint_rejects_explicit_seed(self, trained_model, tmp_path):
        path = self._write_v1(trained_model, tmp_path / "legacy.npz")
        with pytest.raises(ValueError, match="no seed"):
            load_model(path, seed=0)


class TestSeedPersistence:
    """The checkpoint records the construction seed; restore reuses it."""

    def test_seed_restored_without_argument(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        assert load_model(path).seed == trained_model.seed == 0

    def test_matching_explicit_seed_accepted(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        assert load_model(path, seed=0).seed == 0

    def test_mismatched_explicit_seed_rejected(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        with pytest.raises(ValueError, match="seed=0"):
            load_model(path, seed=123)

    def test_seedless_model_rejects_explicit_seed(self, small_benchmark):
        model = train_model("RuleN", small_benchmark, epochs=1)
        payload = model_to_bytes(model)
        with pytest.raises(ValueError, match="no seed"):
            model_from_bytes(payload, seed=7)
        assert model_from_bytes(payload).num_rules() == model.num_rules()


class TestEveryRegisteredModelRoundTrips:
    """Score parity on a fixed triple set after save → load, for all models."""

    @pytest.fixture(scope="class")
    def checkpoint_benchmark(self):
        from repro.datasets.benchmark import build_benchmark

        return build_benchmark("fb15k-237", "EQ", seed=1, scale=0.2)

    @pytest.mark.parametrize("name", model_names())
    def test_checkpoint_score_parity(self, name, checkpoint_benchmark, tmp_path):
        dataset = checkpoint_benchmark
        model = train_model(name, dataset, epochs=1, embedding_dim=8, seed=0)
        assert isinstance(model, Checkpointable)
        if hasattr(model, "eval"):
            model.eval()
        restored = load_model(save_model(model, tmp_path / f"{name}.npz"))
        assert restored.name == name
        context = dataset.split.evaluation_graph()
        model.set_context(context)
        restored.set_context(context)
        probe = dataset.test_triples[:5]
        np.testing.assert_array_equal(model.score_many(probe),
                                      restored.score_many(probe))

    @pytest.mark.parametrize("name", ["DEKG-ILP", "TransE"])
    def test_bytes_roundtrip_matches_disk(self, name, checkpoint_benchmark):
        dataset = checkpoint_benchmark
        model = train_model(name, dataset, epochs=1, embedding_dim=8, seed=0)
        model.eval()
        restored = model_from_bytes(model_to_bytes(model))
        context = dataset.split.evaluation_graph()
        model.set_context(context)
        restored.set_context(context)
        probe = dataset.test_triples[:5]
        np.testing.assert_array_equal(model.score_many(probe),
                                      restored.score_many(probe))
