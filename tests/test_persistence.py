"""Tests for model checkpointing."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import DEKGILP
from repro.core.persistence import (Checkpointable, CheckpointCorruptionError,
                                    _array_checksum, _pack_raw, load_model,
                                    model_from_bytes, model_to_bytes,
                                    pack_archive, read_archive, save_model,
                                    unpack_archive)
from repro.core.trainer import Trainer
from repro.experiment import train_model
from repro.kg.triple import Triple
from repro.registry import model_names


@pytest.fixture
def trained_model(tiny_graph):
    config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, edge_dropout=0.0)
    training = TrainingConfig(epochs=1, batch_size=4, contrastive_examples=1, seed=0)
    model = DEKGILP(3, config=config, seed=0)
    Trainer(model, tiny_graph, training).fit()
    return model


class TestPersistence:
    def test_roundtrip_preserves_parameters(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        restored = load_model(path)
        original_state = trained_model.state_dict()
        restored_state = restored.state_dict()
        assert set(original_state) == set(restored_state)
        for name, value in original_state.items():
            np.testing.assert_array_equal(value, restored_state[name])

    def test_roundtrip_preserves_scores(self, trained_model, tiny_graph, tmp_path):
        path = save_model(trained_model, tmp_path / "model")
        restored = load_model(path)
        trained_model.set_context(tiny_graph)
        restored.set_context(tiny_graph)
        trained_model.eval()
        for triple in (Triple(0, 0, 1), Triple(0, 1, 2), Triple(3, 0, 4)):
            assert restored.score(triple) == pytest.approx(trained_model.score(triple))

    def test_suffix_added_automatically(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_config_restored(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        restored = load_model(path)
        assert restored.config == trained_model.config
        assert restored.num_relations == trained_model.num_relations

    def test_ablation_variant_roundtrip(self, tiny_graph, tmp_path):
        config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, use_semantic=False,
                             edge_dropout=0.0)
        model = DEKGILP(3, config=config, seed=0)
        restored = load_model(save_model(model, tmp_path / "variant.npz"))
        assert restored.clrm is None
        assert restored.gsm is not None

    def test_invalid_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, weights=np.ones(3))
        with pytest.raises(ValueError):
            load_model(bogus)

    def test_loaded_model_is_in_eval_mode(self, trained_model, tmp_path):
        restored = load_model(save_model(trained_model, tmp_path / "model.npz"))
        assert not restored.training


class TestLegacyFormatV1:
    """Checkpoints written before the registry (format v1) still restore."""

    def _write_v1(self, model, path):
        import dataclasses
        import json

        header = {
            "format_version": 1,
            "num_relations": model.num_relations,
            "config": dataclasses.asdict(model.config),
            "class": "DEKGILP",
        }
        arrays = dict(model.state_dict())
        arrays["__header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        return path

    def test_v1_checkpoint_restores_scores(self, trained_model, tiny_graph, tmp_path):
        path = self._write_v1(trained_model, tmp_path / "legacy.npz")
        restored = load_model(path)
        assert restored.seed is None  # v1 never recorded a seed
        trained_model.eval()
        trained_model.set_context(tiny_graph)
        restored.set_context(tiny_graph)
        triples = [Triple(0, 0, 1), Triple(3, 0, 4)]
        np.testing.assert_array_equal(trained_model.score_many(triples),
                                      restored.score_many(triples))

    def test_v1_checkpoint_rejects_explicit_seed(self, trained_model, tmp_path):
        path = self._write_v1(trained_model, tmp_path / "legacy.npz")
        with pytest.raises(ValueError, match="no seed"):
            load_model(path, seed=0)


class TestSeedPersistence:
    """The checkpoint records the construction seed; restore reuses it."""

    def test_seed_restored_without_argument(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        assert load_model(path).seed == trained_model.seed == 0

    def test_matching_explicit_seed_accepted(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        assert load_model(path, seed=0).seed == 0

    def test_mismatched_explicit_seed_rejected(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        with pytest.raises(ValueError, match="seed=0"):
            load_model(path, seed=123)

    def test_seedless_model_rejects_explicit_seed(self, small_benchmark):
        model = train_model("RuleN", small_benchmark, epochs=1)
        payload = model_to_bytes(model)
        with pytest.raises(ValueError, match="no seed"):
            model_from_bytes(payload, seed=7)
        assert model_from_bytes(payload).num_rules() == model.num_rules()


class TestEveryRegisteredModelRoundTrips:
    """Score parity on a fixed triple set after save → load, for all models."""

    @pytest.fixture(scope="class")
    def checkpoint_benchmark(self):
        from repro.datasets.benchmark import build_benchmark

        return build_benchmark("fb15k-237", "EQ", seed=1, scale=0.2)

    @pytest.mark.parametrize("name", model_names())
    def test_checkpoint_score_parity(self, name, checkpoint_benchmark, tmp_path):
        dataset = checkpoint_benchmark
        model = train_model(name, dataset, epochs=1, embedding_dim=8, seed=0)
        assert isinstance(model, Checkpointable)
        if hasattr(model, "eval"):
            model.eval()
        restored = load_model(save_model(model, tmp_path / f"{name}.npz"))
        assert restored.name == name
        context = dataset.split.evaluation_graph()
        model.set_context(context)
        restored.set_context(context)
        probe = dataset.test_triples[:5]
        np.testing.assert_array_equal(model.score_many(probe),
                                      restored.score_many(probe))

    @pytest.mark.parametrize("name", ["DEKG-ILP", "TransE"])
    def test_bytes_roundtrip_matches_disk(self, name, checkpoint_benchmark):
        dataset = checkpoint_benchmark
        model = train_model(name, dataset, epochs=1, embedding_dim=8, seed=0)
        model.eval()
        restored = model_from_bytes(model_to_bytes(model))
        context = dataset.split.evaluation_graph()
        model.set_context(context)
        restored.set_context(context)
        probe = dataset.test_triples[:5]
        np.testing.assert_array_equal(model.score_many(probe),
                                      restored.score_many(probe))


class TestCorruptionMatrix:
    """Every way an archive can rot must surface as a sectioned error."""

    @staticmethod
    def _archive():
        header = {"kind": "model", "note": "corruption-matrix probe"}
        arrays = {"w": np.arange(12, dtype=np.float64).reshape(3, 4),
                  "b": np.ones(4, dtype=np.float32)}
        return header, arrays

    def test_truncated_file(self):
        header, arrays = self._archive()
        payload = pack_archive(header, arrays)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(payload[: len(payload) // 3])
        assert excinfo.value.section == "file"

    def test_missing_header(self):
        buffer = io.BytesIO()
        np.savez(buffer, w=np.zeros(3))  # an npz, but not one of ours
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(buffer.getvalue())
        assert excinfo.value.section == "header"
        assert "missing header" in str(excinfo.value)

    def test_header_not_json(self):
        buffer = io.BytesIO()
        np.savez(buffer, __header__=np.frombuffer(b"{not json", dtype=np.uint8),
                 w=np.zeros(3))
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(buffer.getvalue())
        assert excinfo.value.section == "header"

    def test_bit_flipped_array_payload(self):
        header, arrays = self._archive()
        payload = pack_archive(header, arrays)
        # np.savez stores members uncompressed, so the array's bytes appear
        # literally in the container; flip one bit in the middle of "w".
        needle = np.ascontiguousarray(arrays["w"]).tobytes()
        offset = payload.index(needle) + len(needle) // 2
        tampered = bytearray(payload)
        tampered[offset] ^= 0x01
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(bytes(tampered))
        assert excinfo.value.section == "w"

    def test_checksum_mismatch(self):
        header, arrays = self._archive()
        stamped = json.loads(
            json.dumps({**header, "format_version": 3,
                        "checksums": {name: _array_checksum(array)
                                      for name, array in arrays.items()}}))
        stamped["checksums"]["b"]["crc32"] ^= 0xDEADBEEF
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(_pack_raw(stamped, arrays))
        assert excinfo.value.section == "b"
        assert "crc32 mismatch" in str(excinfo.value)

    def test_uncovered_array_rejected(self):
        header, arrays = self._archive()
        checksums = {"w": _array_checksum(arrays["w"])}  # "b" not covered
        raw = _pack_raw({**header, "format_version": 3, "checksums": checksums},
                        arrays)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(raw)
        assert excinfo.value.section == "b"

    def test_missing_checksummed_array_rejected(self):
        header, arrays = self._archive()
        checksums = {name: _array_checksum(array) for name, array in arrays.items()}
        del arrays["b"]  # checksummed but absent
        raw = _pack_raw({**header, "format_version": 3, "checksums": checksums},
                        arrays)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            unpack_archive(raw)
        assert excinfo.value.section == "b"

    def test_corruption_error_names_path(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"definitely not an npz archive")
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            read_archive(path)
        assert excinfo.value.section == "file"
        assert str(path) in str(excinfo.value)

    def test_corruption_error_is_a_value_error(self):
        # Callers that predate v3 catch ValueError; corruption must still
        # land in those handlers.
        assert issubclass(CheckpointCorruptionError, ValueError)

    def test_v2_archive_without_checksums_roundtrips(self, trained_model, tmp_path):
        """A pre-v3 checkpoint (no checksums header) still loads bit-exact."""
        path = save_model(trained_model, tmp_path / "model.npz")
        header, arrays = read_archive(path)
        assert header["format_version"] == 3 and "checksums" in header
        v2_header = {key: value for key, value in header.items()
                     if key != "checksums"}
        v2_header["format_version"] = 2
        (tmp_path / "v2.npz").write_bytes(_pack_raw(v2_header, arrays))
        restored = load_model(tmp_path / "v2.npz")
        for name, value in trained_model.state_dict().items():
            np.testing.assert_array_equal(value, restored.state_dict()[name])

    def test_bit_flipped_model_checkpoint_rejected_by_load(self, trained_model,
                                                           tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(CheckpointCorruptionError):
            load_model(path)
