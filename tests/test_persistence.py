"""Tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import DEKGILP
from repro.core.persistence import load_model, save_model
from repro.core.trainer import Trainer
from repro.kg.triple import Triple


@pytest.fixture
def trained_model(tiny_graph):
    config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, edge_dropout=0.0)
    training = TrainingConfig(epochs=1, batch_size=4, contrastive_examples=1, seed=0)
    model = DEKGILP(3, config=config, seed=0)
    Trainer(model, tiny_graph, training).fit()
    return model


class TestPersistence:
    def test_roundtrip_preserves_parameters(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        restored = load_model(path)
        original_state = trained_model.state_dict()
        restored_state = restored.state_dict()
        assert set(original_state) == set(restored_state)
        for name, value in original_state.items():
            np.testing.assert_array_equal(value, restored_state[name])

    def test_roundtrip_preserves_scores(self, trained_model, tiny_graph, tmp_path):
        path = save_model(trained_model, tmp_path / "model")
        restored = load_model(path)
        trained_model.set_context(tiny_graph)
        restored.set_context(tiny_graph)
        trained_model.eval()
        for triple in (Triple(0, 0, 1), Triple(0, 1, 2), Triple(3, 0, 4)):
            assert restored.score(triple) == pytest.approx(trained_model.score(triple))

    def test_suffix_added_automatically(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "checkpoint")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_config_restored(self, trained_model, tmp_path):
        path = save_model(trained_model, tmp_path / "model.npz")
        restored = load_model(path)
        assert restored.config == trained_model.config
        assert restored.num_relations == trained_model.num_relations

    def test_ablation_variant_roundtrip(self, tiny_graph, tmp_path):
        config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, use_semantic=False,
                             edge_dropout=0.0)
        model = DEKGILP(3, config=config, seed=0)
        restored = load_model(save_model(model, tmp_path / "variant.npz"))
        assert restored.clrm is None
        assert restored.gsm is not None

    def test_invalid_checkpoint_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, weights=np.ones(3))
        with pytest.raises(ValueError):
            load_model(bogus)

    def test_loaded_model_is_in_eval_mode(self, trained_model, tmp_path):
        restored = load_model(save_model(trained_model, tmp_path / "model.npz"))
        assert not restored.training
