"""Tests for the relational GNN substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.gnn.encoder import SubgraphEncoder
from repro.gnn.message_passing import aggregate_messages, degree_normalization
from repro.gnn.pooling import max_pool_nodes, mean_pool_nodes, sum_pool_nodes
from repro.gnn.rgcn import RGCNLayer
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.subgraph.extraction import extract_enclosing_subgraph


class TestMessagePassing:
    def test_aggregate_sums_messages(self):
        messages = Tensor(np.array([[1.0, 0.0], [2.0, 0.0], [0.0, 3.0]]))
        destinations = np.array([0, 0, 1])
        out = aggregate_messages(messages, destinations, num_nodes=3)
        np.testing.assert_array_equal(out.data, [[3.0, 0.0], [0.0, 3.0], [0.0, 0.0]])

    def test_aggregate_with_weights(self):
        messages = Tensor(np.array([[2.0], [4.0]]))
        weights = Tensor(np.array([[0.5], [0.25]]))
        out = aggregate_messages(messages, np.array([0, 0]), num_nodes=1, weights=weights)
        assert out.data[0, 0] == pytest.approx(2.0)

    def test_aggregate_gradient_flows(self):
        messages = Tensor(np.ones((3, 2)), requires_grad=True)
        out = aggregate_messages(messages, np.array([0, 1, 1]), num_nodes=2)
        out.sum().backward()
        np.testing.assert_array_equal(messages.grad, np.ones((3, 2)))

    def test_degree_normalization(self):
        norm = degree_normalization(np.array([0, 0, 1]), num_nodes=3)
        np.testing.assert_allclose(norm.reshape(-1), [0.5, 0.5, 1.0])

    def test_degree_normalization_handles_zero_degree(self):
        norm = degree_normalization(np.array([2]), num_nodes=4)
        assert np.isfinite(norm).all()


class TestPooling:
    def test_mean_pool(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(mean_pool_nodes(x).data, [2.0, 3.0])

    def test_sum_pool(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(sum_pool_nodes(x).data, [4.0, 6.0])

    def test_max_pool(self):
        x = Tensor(np.array([[1.0, 5.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(max_pool_nodes(x).data, [3.0, 5.0])


@pytest.fixture
def toy_subgraph(tiny_graph):
    return extract_enclosing_subgraph(tiny_graph, Triple(0, 0, 2), hops=2)


class TestRGCNLayer:
    def test_output_shape(self, toy_subgraph):
        layer = RGCNLayer(in_dim=6, out_dim=8, num_relations=3, rng=np.random.default_rng(0))
        out = layer(Tensor(toy_subgraph.node_features), toy_subgraph.edges)
        assert out.shape == (toy_subgraph.num_nodes, 8)

    def test_no_edges_still_works(self):
        layer = RGCNLayer(in_dim=4, out_dim=4, num_relations=2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((3, 4))), np.zeros((0, 3), dtype=np.int64))
        assert out.shape == (3, 4)

    def test_output_nonnegative_after_relu(self, toy_subgraph):
        layer = RGCNLayer(in_dim=6, out_dim=5, num_relations=3, rng=np.random.default_rng(0))
        out = layer(Tensor(toy_subgraph.node_features), toy_subgraph.edges)
        assert np.all(out.data >= 0)

    def test_gradients_reach_basis(self, toy_subgraph):
        layer = RGCNLayer(in_dim=6, out_dim=4, num_relations=3, rng=np.random.default_rng(0))
        out = layer(Tensor(toy_subgraph.node_features), toy_subgraph.edges)
        out.sum().backward()
        assert layer.basis.grad is not None
        assert layer.self_weight.grad is not None

    def test_attention_toggle_changes_parameter_count(self):
        with_attention = RGCNLayer(4, 4, 3, use_attention=True)
        without_attention = RGCNLayer(4, 4, 3, use_attention=False)
        assert with_attention.num_parameters() > without_attention.num_parameters()

    def test_num_bases_capped_at_relations(self):
        layer = RGCNLayer(4, 4, num_relations=2, num_bases=10)
        assert layer.num_bases == 2

    def test_invalid_bases(self):
        with pytest.raises(ValueError):
            RGCNLayer(4, 4, 3, num_bases=0)

    def test_messages_propagate_information(self):
        # Two nodes, an edge 0 -> 1: node 1's output must depend on node 0's input.
        graph_edges = np.array([[0, 0, 1]], dtype=np.int64)
        layer = RGCNLayer(2, 2, 1, use_attention=False, rng=np.random.default_rng(0))
        base = layer(Tensor(np.array([[1.0, 0.0], [0.0, 0.0]])), graph_edges).data[1]
        changed = layer(Tensor(np.array([[5.0, 0.0], [0.0, 0.0]])), graph_edges).data[1]
        assert not np.allclose(base, changed)


class TestSubgraphEncoder:
    def test_encode_shapes(self, toy_subgraph):
        encoder = SubgraphEncoder(input_dim=6, hidden_dim=8, num_relations=3,
                                  rng=np.random.default_rng(0))
        graph_vec, head_vec, tail_vec = encoder.encode(toy_subgraph)
        assert graph_vec.shape == (8,)
        assert head_vec.shape == (8,)
        assert tail_vec.shape == (8,)

    def test_layer_count_validation(self):
        with pytest.raises(ValueError):
            SubgraphEncoder(4, 4, 2, num_layers=0)

    def test_forward_matrix_shape(self, toy_subgraph):
        encoder = SubgraphEncoder(input_dim=6, hidden_dim=5, num_relations=3,
                                  num_layers=3, rng=np.random.default_rng(0))
        out = encoder(toy_subgraph)
        assert out.shape == (toy_subgraph.num_nodes, 5)

    def test_gradients_flow_through_encoder(self, toy_subgraph):
        encoder = SubgraphEncoder(input_dim=6, hidden_dim=4, num_relations=3,
                                  rng=np.random.default_rng(0))
        graph_vec, _, _ = encoder.encode(toy_subgraph)
        graph_vec.sum().backward()
        assert encoder.input_projection.weight.grad is not None

    def test_dropout_only_in_training(self, toy_subgraph):
        encoder = SubgraphEncoder(input_dim=6, hidden_dim=4, num_relations=3,
                                  dropout=0.9, rng=np.random.default_rng(0))
        encoder.eval()
        a = encoder(toy_subgraph).data
        b = encoder(toy_subgraph).data
        np.testing.assert_array_equal(a, b)

    def test_disconnected_subgraph_encodes(self):
        graph = KnowledgeGraph(6, 2, [Triple(0, 0, 1), Triple(3, 1, 4)])
        subgraph = extract_enclosing_subgraph(graph, Triple(1, 0, 3), hops=2)
        assert subgraph.is_disconnected()
        encoder = SubgraphEncoder(input_dim=6, hidden_dim=4, num_relations=2,
                                  rng=np.random.default_rng(0))
        graph_vec, head_vec, tail_vec = encoder.encode(subgraph)
        assert np.isfinite(graph_vec.data).all()
        assert np.isfinite(head_vec.data).all()
        assert np.isfinite(tail_vec.data).all()


class TestCounterEdgeDropout:
    """The (seed, epoch, layer, edge) counter behind training-time dropout."""

    def test_uniform_from_keys_deterministic_and_salted(self):
        from repro.gnn.edge_dropout import uniform_from_keys

        keys = np.arange(1000, dtype=np.uint64)
        first = uniform_from_keys(keys, 3, 1, 0)
        np.testing.assert_array_equal(first, uniform_from_keys(keys, 3, 1, 0))
        for other_salts in ((4, 1, 0), (3, 2, 0), (3, 1, 1)):
            assert not np.array_equal(first, uniform_from_keys(keys, *other_salts))
        assert first.min() >= 0.0 and first.max() < 1.0
        # Roughly uniform: the mean of 1000 variates sits near 0.5.
        assert abs(first.mean() - 0.5) < 0.05

    def test_edge_keys_are_global_identities(self):
        from repro.gnn.edge_dropout import edge_keys

        edges = np.array([[0, 1, 2], [1, 0, 0]], dtype=np.int64)
        # Different global node mappings must hash differently; the same
        # mapping must hash identically regardless of call site.
        nodes_a = [10, 11, 12]
        nodes_b = [10, 11, 13]
        np.testing.assert_array_equal(edge_keys(nodes_a, edges),
                                      edge_keys(nodes_a, edges))
        assert not np.array_equal(edge_keys(nodes_a, edges),
                                  edge_keys(nodes_b, edges))
        assert edge_keys(nodes_a, np.zeros((0, 3), dtype=np.int64)).shape == (0,)

    def test_mask_epoch_advances_redraw(self):
        from repro.gnn.edge_dropout import (DropoutClock, counter_dropout_mask,
                                            edge_keys)

        clock = DropoutClock(seed=7)
        edges = np.column_stack([np.arange(64), np.zeros(64, dtype=np.int64),
                                 np.arange(1, 65)]).astype(np.int64)
        keys = edge_keys(np.arange(65), edges)
        first = counter_dropout_mask(clock, 0, keys, rate=0.5)
        assert first.shape == (64, 1)
        np.testing.assert_array_equal(first, counter_dropout_mask(clock, 0, keys, 0.5))
        # Advancing the epoch redraws the masks for the very same edges.
        clock.epoch = 1
        redrawn = counter_dropout_mask(clock, 0, keys, rate=0.5)
        assert not np.array_equal(first, redrawn)
        # Inverted dropout: kept entries scale by 1 / (1 - rate).
        assert set(np.unique(first)).issubset({0.0, 2.0})

    def test_union_graph_masks_equal_per_subgraph_masks(self):
        """The property the whole trainer-parity guarantee rests on."""
        graph = KnowledgeGraph(8, 2, [Triple(0, 0, 1), Triple(1, 1, 2),
                                      Triple(2, 0, 3), Triple(4, 1, 5)])
        encoder = SubgraphEncoder(input_dim=6, hidden_dim=4, num_relations=2,
                                  dropout=0.5, rng=np.random.default_rng(0),
                                  dropout_seed=11)
        encoder.train()
        left = extract_enclosing_subgraph(graph, Triple(0, 0, 3), hops=2)
        right = extract_enclosing_subgraph(graph, Triple(4, 1, 5), hops=2)
        separate = [encoder(left).data.copy(), encoder(right).data.copy()]
        # Same subgraphs concatenated into one block-diagonal union graph.
        from repro.gnn.edge_dropout import edge_keys

        offset = left.num_nodes
        shifted = right.edges.copy()
        if shifted.size:
            shifted[:, 0] += offset
            shifted[:, 2] += offset
        union_edges = np.concatenate([left.edges, shifted])
        union_keys = np.concatenate([edge_keys(left.nodes, left.edges),
                                     edge_keys(right.nodes, right.edges)])
        features = Tensor(np.concatenate([left.node_features, right.node_features]))
        union = encoder.forward_features(features, union_edges,
                                         edge_identity=union_keys).data
        np.testing.assert_allclose(union[:offset], separate[0], atol=1e-12)
        np.testing.assert_allclose(union[offset:], separate[1], atol=1e-12)
