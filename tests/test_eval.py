"""Tests for metrics, ranking, evaluator, complexity and case-study utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.case_study import CaseStudyResult, embedding_heatmap, render_heatmap_ascii
from repro.eval.complexity import ComplexityReport, complexity_table, measure_complexity, parameter_formula
from repro.eval.evaluator import Evaluator
from repro.eval.metrics import RankingMetrics, hits_at, mean_reciprocal_rank
from repro.eval.ranking import filtered_candidates, rank_candidates
from repro.eval.reporting import format_table, markdown_table, results_to_rows
from repro.kg.triple import Triple


class TestMetrics:
    def test_mrr_simple(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3)

    def test_mrr_empty(self):
        assert mean_reciprocal_rank([]) == 0.0

    def test_mrr_rejects_invalid_ranks(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank([0])

    def test_hits_at(self):
        assert hits_at([1, 3, 11], 10) == pytest.approx(2 / 3)
        assert hits_at([1, 3, 11], 1) == pytest.approx(1 / 3)

    def test_hits_validation(self):
        with pytest.raises(ValueError):
            hits_at([1], 0)

    def test_accumulator(self):
        metrics = RankingMetrics()
        metrics.extend([1, 2, 10])
        assert len(metrics) == 3
        summary = metrics.summary()
        assert summary["MRR"] == pytest.approx(mean_reciprocal_rank([1, 2, 10]))
        assert summary["Hits@10"] == 1.0
        assert summary["Hits@1"] == pytest.approx(1 / 3)

    def test_accumulator_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            RankingMetrics().add(0)

    def test_merge(self):
        a = RankingMetrics()
        a.extend([1, 2])
        b = RankingMetrics()
        b.extend([3])
        merged = a.merge(b)
        assert len(merged) == 3
        assert len(a) == 2


class TestRanking:
    def test_rank_is_one_when_best(self):
        assert rank_candidates(10.0, [1.0, 2.0, 3.0]) == 1

    def test_rank_counts_higher_scores(self):
        assert rank_candidates(1.0, [2.0, 3.0, 0.5]) == 3

    def test_rank_with_no_candidates(self):
        assert rank_candidates(1.0, []) == 1

    def test_ties_are_penalized(self):
        assert rank_candidates(1.0, [1.0, 1.0, 1.0, 0.0]) > 1

    def test_filtered_candidates_exclude_known_facts(self):
        triple = Triple(0, 0, 1)
        known = {(2, 0, 1)}
        candidates = filtered_candidates(triple, "head", entity_candidates=[0, 1, 2, 3],
                                         relation_candidates=[0], known_facts=known)
        heads = {c.head for c in candidates}
        assert 2 not in heads          # filtered (known fact)
        assert 0 not in heads          # never corrupt into the true triple
        assert heads == {1, 3}

    def test_filtered_candidates_tail_and_relation_forms(self):
        triple = Triple(0, 1, 2)
        tails = filtered_candidates(triple, "tail", [0, 1, 2, 3], [0, 1, 2], set())
        assert all(c.head == 0 and c.relation == 1 for c in tails)
        relations = filtered_candidates(triple, "relation", [0, 1], [0, 1, 2], set())
        assert {c.relation for c in relations} == {0, 2}

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            filtered_candidates(Triple(0, 0, 1), "nope", [0], [0], set())

    def test_max_candidates_subsampling(self):
        triple = Triple(0, 0, 1)
        candidates = filtered_candidates(triple, "head", list(range(100)), [0], set(),
                                         max_candidates=10, rng=np.random.default_rng(0))
        assert len(candidates) == 10

    def test_subsampling_without_rng_rejected(self):
        # Regression: an unseeded default_rng() fallback made sampled ranking
        # non-reproducible run-to-run; sampling now demands an explicit rng.
        with pytest.raises(ValueError, match="seeded rng"):
            filtered_candidates(Triple(0, 0, 1), "head", list(range(100)), [0], set(),
                                max_candidates=10)

    def test_subsampling_is_reproducible_with_seeded_rng(self):
        picks = [
            filtered_candidates(Triple(0, 0, 1), "head", list(range(100)), [0], set(),
                                max_candidates=10, rng=np.random.default_rng(42))
            for _ in range(2)
        ]
        assert picks[0] == picks[1]

    def test_nan_true_score_ranks_last(self):
        # Regression: NaN compares False to everything, so a NaN true score
        # used to get rank 1 and silently inflate MRR/Hits.
        assert rank_candidates(float("nan"), [0.5, 0.2, 0.1]) == 4
        assert rank_candidates(float("inf"), [0.5]) == 2
        assert rank_candidates(float("-inf"), []) == 1

    def test_nan_candidate_scores_rank_above_true(self):
        # Regression: NaN candidates counted as neither higher nor equal.
        assert rank_candidates(1.0, [float("nan"), 0.5]) == 2
        assert rank_candidates(1.0, [float("nan"), float("inf"), float("-inf")]) == 4
        assert rank_candidates(1.0, [0.5, 0.2]) == 1


class ConstantModel:
    """Scores every triple identically (worst case for ranking)."""

    name = "Constant"

    def set_context(self, graph):
        self.graph = graph

    def score_many(self, triples):
        return np.zeros(len(triples))

    def num_parameters(self):
        return 0


class OracleModel:
    """Scores known test triples above everything else."""

    name = "Oracle"

    def __init__(self, truth):
        self.truth = {t.astuple() for t in truth}

    def set_context(self, graph):
        pass

    def score_many(self, triples):
        return np.array([1.0 if t.astuple() in self.truth else 0.0 for t in triples])

    def num_parameters(self):
        return 0


class TestEvaluator:
    def test_oracle_gets_perfect_scores(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=20, seed=0)
        result = evaluator.evaluate(OracleModel(small_benchmark.test_triples))
        assert result.metric("MRR") == pytest.approx(1.0)
        assert result.metric("Hits@1") == pytest.approx(1.0)

    def test_constant_model_is_poor(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=20, seed=0)
        result = evaluator.evaluate(ConstantModel())
        assert result.metric("MRR") < 0.5

    def test_scopes_partition_overall(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=10, seed=0)
        result = evaluator.evaluate(ConstantModel())
        assert len(result.overall.ranks) == (
            len(result.enclosing.ranks) + len(result.bridging.ranks)
        )

    def test_relation_form_supported(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, forms=("relation",), max_candidates=None, seed=0)
        result = evaluator.evaluate(OracleModel(small_benchmark.test_triples))
        assert result.metric("MRR") == pytest.approx(1.0)

    def test_model_name_defaults_to_attribute(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=5, seed=0)
        result = evaluator.evaluate(ConstantModel())
        assert result.model_name == "Constant"

    def test_evaluate_many(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=5, seed=0)
        results = evaluator.evaluate_many({"a": ConstantModel(), "b": ConstantModel()})
        assert [r.model_name for r in results] == ["a", "b"]

    def test_summary_structure(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=5, seed=0)
        summary = evaluator.evaluate(ConstantModel()).summary()
        assert set(summary) == {"overall", "enclosing", "bridging"}
        assert set(summary["overall"]) == {"MRR", "Hits@1", "Hits@5", "Hits@10"}


class TestComplexity:
    def test_parameter_formula_ordering(self):
        num_entities, num_relations = 3668, 215    # FB15k-237 ME scale (Table II)
        entity_models = [parameter_formula(m, num_entities, num_relations) for m in
                         ("TransE", "RotatE", "ConvE", "GEN")]
        relation_only_models = [parameter_formula(m, num_entities, num_relations) for m in
                                ("Grail", "DEKG-ILP")]
        # Entity-identity methods scale with |E| and dominate the relation-only methods.
        assert min(entity_models) > max(relation_only_models)

    def test_dekg_ilp_between_grail_and_tact(self):
        grail = parameter_formula("Grail", 1000, 50)
        dekg = parameter_formula("DEKG-ILP", 1000, 50)
        tact = parameter_formula("TACT", 1000, 50)
        assert grail < dekg < tact

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            parameter_formula("Unknown", 10, 10)

    def test_measure_complexity(self, small_benchmark):
        model = ConstantModel()
        links = small_benchmark.test_triples[:5]
        report = measure_complexity(model, links, context=small_benchmark.train_graph)
        assert report.links_scored == 5
        assert report.inference_seconds >= 0
        assert report.milliseconds_per_link >= 0

    def test_complexity_table(self):
        reports = [ComplexityReport("A", 10, 0.5, 50), ComplexityReport("B", 20, 1.0, 50)]
        table = complexity_table(reports)
        assert table["A"]["parameters"] == 10
        assert table["B"]["ms_per_link"] == pytest.approx(20.0)


class TestCaseStudy:
    def test_heatmap_shape_and_content(self):
        head = np.arange(32.0)
        tail = np.arange(32.0, 64.0)
        heatmap = embedding_heatmap(head, tail, side=8)
        assert heatmap.shape == (8, 8)
        np.testing.assert_array_equal(heatmap.reshape(-1), np.arange(64.0))

    def test_heatmap_pads_short_embeddings(self):
        heatmap = embedding_heatmap(np.ones(3), np.ones(3), side=4)
        assert heatmap.shape == (4, 4)
        assert heatmap.reshape(-1)[6:].sum() == 0

    def test_activity_and_magnitude(self):
        semantic = np.ones((8, 8))
        topological = np.zeros((8, 8))
        result = CaseStudyResult(Triple(0, 0, 1), semantic, topological)
        activity = result.activity()
        assert activity["semantic"] == 1.0
        assert activity["topological"] == 0.0
        assert result.mean_magnitude()["semantic"] == 1.0

    def test_ascii_rendering(self):
        art = render_heatmap_ascii(np.eye(4))
        assert len(art.splitlines()) == 4


class TestReporting:
    def test_results_to_rows_and_tables(self, small_benchmark):
        evaluator = Evaluator(small_benchmark, max_candidates=5, seed=0)
        results = [evaluator.evaluate(ConstantModel())]
        rows = results_to_rows(results)
        assert rows[0]["model"] == "Constant"
        text = format_table(rows)
        assert "Constant" in text and "MRR" in text
        markdown = markdown_table(rows)
        assert markdown.startswith("| model")

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"
        assert markdown_table([]) == "(no rows)"
