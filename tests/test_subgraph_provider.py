"""Batched extraction equivalence, cache policies, and provider counters.

The multi-source :func:`repro.subgraph.provider.extract_batch` must be a pure
performance change: for any batch of targets it has to return subgraphs
*identical* to the per-pair extractor — same node sets, node indexing,
double-radius labels, features and induced edges — including on degenerate
pairs (disconnected components, ``head == tail``, isolated entities, empty
neighborhoods).  The cache policies and the two-scope hit/miss counters are
covered alongside.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ModelConfig
from repro.core.model import DEKGILP
from repro.core.trainer import Trainer
from repro.core.config import TrainingConfig
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple
from repro.subgraph.extraction import extract_enclosing_subgraph
from repro.subgraph.provider import (AdaptiveLRUPolicy, CorruptionAwarePolicy,
                                     LRUPolicy, SubgraphProvider,
                                     _assemble_all_pairs_legacy,
                                     _assemble_labels_batch, _stacked_bfs,
                                     extract_batch, make_cache_policy,
                                     masked_edges, share_provider)


def _random_graph(num_entities: int, num_relations: int, num_triples: int,
                  seed: int) -> KnowledgeGraph:
    rng = np.random.default_rng(seed)
    tuples = sorted({
        (int(h), int(r), int(t))
        for h, r, t in zip(rng.integers(0, num_entities, num_triples),
                           rng.integers(0, num_relations, num_triples),
                           rng.integers(0, num_entities, num_triples))
    })
    return KnowledgeGraph(num_entities, num_relations,
                          [Triple(*t) for t in tuples])


def _assert_subgraphs_identical(batched, per_pair, context=""):
    assert batched.target == per_pair.target, context
    assert batched.nodes == per_pair.nodes, context
    assert batched.node_index == per_pair.node_index, context
    assert batched.labels == per_pair.labels, context
    np.testing.assert_array_equal(batched.node_features, per_pair.node_features,
                                  err_msg=context)
    np.testing.assert_array_equal(batched.edges, per_pair.edges, err_msg=context)


class TestExtractBatchEquivalence:
    """Property: extract_batch == [extract_enclosing_subgraph(...)] bit-for-bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        graph_seed=st.integers(0, 2**16),
        target_seed=st.integers(0, 2**16),
        num_entities=st.integers(4, 50),
        density=st.integers(1, 4),
        hops=st.integers(1, 3),
        improved=st.booleans(),
        omit=st.booleans(),
        max_nodes=st.sampled_from([4, 12, 200]),
    )
    def test_random_batches_identical(self, graph_seed, target_seed, num_entities,
                                      density, hops, improved, omit, max_nodes):
        graph = _random_graph(num_entities, 3, num_entities * density, graph_seed)
        rng = np.random.default_rng(target_seed)
        targets = [
            Triple(int(h), int(r), int(t))
            for h, r, t in zip(rng.integers(0, num_entities, 12),
                               rng.integers(0, 3, 12),
                               rng.integers(0, num_entities, 12))
        ]
        # Degenerate shapes alongside the random draws: self-loops and a
        # duplicated pair (the batch path must handle repeats gracefully).
        targets.append(Triple(0, 0, 0))
        targets.append(targets[0])
        batched = extract_batch(graph, targets, hops=hops,
                                improved_labeling=improved, max_nodes=max_nodes,
                                omit_target_edge=omit)
        for target, subgraph in zip(targets, batched):
            expected = extract_enclosing_subgraph(
                graph, target, hops=hops, improved_labeling=improved,
                max_nodes=max_nodes, omit_target_edge=omit)
            _assert_subgraphs_identical(subgraph, expected,
                                        context=f"target={target}")

    def test_disconnected_and_isolated_pairs(self):
        # 0-1-2 chain, separate 5-6 pair, 3/4/7 isolated.
        graph = KnowledgeGraph(8, 2, [Triple(0, 0, 1), Triple(1, 1, 2),
                                      Triple(5, 0, 6)])
        targets = [
            Triple(0, 0, 2),   # enclosing
            Triple(0, 1, 5),   # bridging across components
            Triple(3, 0, 4),   # both endpoints isolated (empty neighborhoods)
            Triple(0, 0, 0),   # head == tail with neighbors
            Triple(7, 1, 7),   # head == tail, isolated
            Triple(6, 0, 5),   # reversed direction of an existing edge
        ]
        for improved in (True, False):
            batched = extract_batch(graph, targets, hops=2,
                                    improved_labeling=improved)
            for target, subgraph in zip(targets, batched):
                expected = extract_enclosing_subgraph(graph, target, hops=2,
                                                      improved_labeling=improved)
                _assert_subgraphs_identical(subgraph, expected,
                                            context=f"target={target}")

    def test_empty_batch(self):
        graph = KnowledgeGraph(3, 1, [Triple(0, 0, 1)])
        assert extract_batch(graph, []) == []

    def test_zero_hop_batch(self):
        graph = KnowledgeGraph(4, 1, [Triple(0, 0, 1), Triple(1, 0, 2)])
        targets = [Triple(0, 0, 2), Triple(1, 0, 3)]
        batched = extract_batch(graph, targets, hops=0)
        for target, subgraph in zip(targets, batched):
            expected = extract_enclosing_subgraph(graph, target, hops=0)
            _assert_subgraphs_identical(subgraph, expected)

    def test_cap_overflow_matches_per_pair_extractor(self):
        # A hub star forces len(labels) > max_nodes, exercising the batched
        # path's fallback onto the reference set/dict assembly (the cap's
        # stable degree sort ties break on set iteration order).
        triples = [Triple(0, 0, n) for n in range(1, 30)]
        triples += [Triple(n, 1, 30) for n in range(1, 30)]
        graph = KnowledgeGraph(31, 2, triples)
        targets = [Triple(0, 0, 30), Triple(0, 1, 1), Triple(5, 0, 6)]
        for improved in (True, False):
            batched = extract_batch(graph, targets, hops=2,
                                    improved_labeling=improved, max_nodes=8)
            assert all(s.num_nodes <= 8 for s in batched)
            assert any(s.num_nodes == 8 for s in batched)  # cap really fired
            for target, subgraph in zip(targets, batched):
                expected = extract_enclosing_subgraph(
                    graph, target, hops=2, improved_labeling=improved,
                    max_nodes=8)
                _assert_subgraphs_identical(subgraph, expected,
                                            context=f"target={target}")

    def test_scratch_matrices_are_reusable(self):
        # Two consecutive batched extractions must see clean scratch state
        # (the release path resets only the touched region).
        graph = _random_graph(30, 2, 80, seed=5)
        targets = [Triple(int(h), 0, int(t))
                   for h, t in zip(range(10), range(10, 20))]
        first = extract_batch(graph, targets, hops=2)
        second = extract_batch(graph, targets, hops=2)
        for left, right in zip(first, second):
            _assert_subgraphs_identical(left, right)


class TestVectorizedLabelAssembly:
    """The flat-key assembly must equal the legacy set/dict path bit-for-bit."""

    def _assemble_both(self, graph, targets, hops, improved, max_nodes):
        num_targets = len(targets)
        adjacency = graph.adjacency()
        heads = np.fromiter((t.head for t in targets), np.int64, num_targets)
        tails = np.fromiter((t.tail for t in targets), np.int64, num_targets)
        sources = np.empty(2 * num_targets, dtype=np.int64)
        sources[0::2] = heads
        sources[1::2] = tails
        partners = np.empty_like(sources)
        partners[0::2] = tails
        partners[1::2] = heads
        region = _stacked_bfs(adjacency, sources, hops)
        distance = _stacked_bfs(adjacency, sources, hops, blocked=partners)
        vectorized = _assemble_labels_batch(graph, heads, tails, region,
                                            distance, hops, improved, max_nodes)
        legacy = _assemble_all_pairs_legacy(graph, heads, tails, region,
                                            distance, hops, improved, max_nodes)
        return vectorized, legacy

    @settings(max_examples=25, deadline=None)
    @given(
        graph_seed=st.integers(0, 2**16),
        target_seed=st.integers(0, 2**16),
        num_entities=st.integers(4, 40),
        hops=st.integers(0, 3),
        improved=st.booleans(),
        max_nodes=st.sampled_from([4, 200]),
    )
    def test_assembly_paths_bit_identical(self, graph_seed, target_seed,
                                          num_entities, hops, improved,
                                          max_nodes):
        graph = _random_graph(num_entities, 3, num_entities * 3, graph_seed)
        rng = np.random.default_rng(target_seed)
        targets = [Triple(int(h), 0, int(t))
                   for h, t in zip(rng.integers(0, num_entities, 8),
                                   rng.integers(0, num_entities, 8))]
        targets.append(Triple(0, 0, 0))
        vectorized, legacy = self._assemble_both(graph, targets, hops,
                                                 improved, max_nodes)
        for column, (fast, slow) in enumerate(zip(vectorized, legacy)):
            for pair, (left, right) in enumerate(zip(fast, slow)):
                if isinstance(left, np.ndarray):
                    np.testing.assert_array_equal(
                        left, right, err_msg=f"column={column} pair={pair}")
                else:
                    assert left == right, f"column={column} pair={pair}"

    def test_out_of_range_endpoints_use_reference_path(self):
        # Flat pair*num_nodes+node keys cannot encode endpoints outside the
        # graph; such batches must still equal the legacy assembly.
        graph = KnowledgeGraph(4, 1, [Triple(0, 0, 1), Triple(1, 0, 2)])
        targets = [Triple(0, 0, 7), Triple(9, 0, 1), Triple(0, 0, 2)]
        vectorized, legacy = self._assemble_both(graph, targets, hops=2,
                                                 improved=True, max_nodes=200)
        labels_fast, nodes_fast = vectorized[0], vectorized[1]
        labels_slow, nodes_slow = legacy[0], legacy[1]
        assert labels_fast == labels_slow
        assert nodes_fast == nodes_slow
        assert 7 in labels_fast[0] and 9 in labels_fast[1]


class TestMaskedEdges:
    def test_drops_only_the_scored_link(self):
        graph = KnowledgeGraph(4, 2, [Triple(0, 0, 1), Triple(0, 1, 1),
                                      Triple(1, 0, 2)])
        subgraph = extract_batch(graph, [Triple(0, 0, 1)],
                                 omit_target_edge=False)[0]
        masked = masked_edges(graph, subgraph, Triple(0, 0, 1))
        assert masked.shape[0] == subgraph.edges.shape[0] - 1
        expected = extract_enclosing_subgraph(graph, Triple(0, 0, 1),
                                              omit_target_edge=True)
        np.testing.assert_array_equal(masked, expected.edges)

    def test_noop_for_absent_link(self):
        graph = KnowledgeGraph(4, 2, [Triple(0, 0, 1)])
        subgraph = extract_batch(graph, [Triple(0, 1, 1)],
                                 omit_target_edge=False)[0]
        masked = masked_edges(graph, subgraph, Triple(0, 1, 1))
        np.testing.assert_array_equal(masked, subgraph.edges)


class TestCachePolicies:
    def test_lru_evicts_least_recently_used(self):
        policy = LRUPolicy(capacity=2)
        policy.put((0, 1), "a")
        policy.put((0, 2), "b")
        assert policy.get((0, 1)) == "a"   # refresh (0, 1)
        policy.put((0, 3), "c")            # evicts (0, 2)
        assert policy.get((0, 2)) is None
        assert policy.get((0, 1)) == "a"
        assert len(policy) == 2

    def test_adaptive_grows_on_ghost_hit(self):
        policy = AdaptiveLRUPolicy(capacity=2)
        policy.put((0, 1), "a")
        policy.put((0, 2), "b")
        policy.put((0, 3), "c")            # evicts (0, 1) into the ghost list
        assert policy.capacity == 2
        assert policy.get((0, 1)) is None  # ghost hit -> capacity doubles
        assert policy.capacity == 4
        policy.put((0, 1), "a")
        policy.put((0, 4), "d")
        assert len(policy) == 4            # no eviction at the grown capacity
        assert policy.max_capacity == 2 * 16

    def test_adaptive_capacity_is_bounded(self):
        policy = AdaptiveLRUPolicy(capacity=1, max_capacity=2)
        for round_trip in range(5):
            policy.put((0, 1), "a")
            policy.put((0, 2), "b")
            policy.get((0, 1))
        assert policy.capacity == 2

    def test_corruption_aware_pins_survive_eviction_pressure(self):
        policy = CorruptionAwarePolicy(capacity=2)
        policy.pin([(7, 8)])
        policy.put((7, 8), "true-pair")
        for corruption in range(100, 120):
            policy.put((corruption, corruption + 1), "corrupt")
        assert policy.get((7, 8)) == "true-pair"
        assert len(policy) == 2 + 1        # LRU portion + the pinned entry

    def test_corruption_aware_pin_promotes_existing_entry(self):
        policy = CorruptionAwarePolicy(capacity=1)
        policy.put((1, 2), "x")
        policy.pin([(1, 2)])
        policy.put((3, 4), "y")            # fills the whole LRU portion
        policy.put((5, 6), "z")
        assert policy.get((1, 2)) == "x"   # promoted before the churn

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_cache_policy("clairvoyant", 16)
        with pytest.raises(ValueError, match="unknown cache policy"):
            SubgraphProvider(policy="clairvoyant")
        with pytest.raises(ValueError, match="subgraph_cache_policy"):
            ModelConfig(subgraph_cache_policy="clairvoyant")


class TestProviderCounters:
    def test_dedupe_and_hit_accounting(self):
        graph = _random_graph(20, 2, 50, seed=0)
        provider = SubgraphProvider(hops=2)
        subgraphs = provider.get_many(graph, [(0, 1), (0, 1), (2, 3)])
        assert subgraphs[0] is subgraphs[1]
        stats = provider.stats()
        assert stats["misses"] == 2 and stats["hits"] == 1
        provider.get_many(graph, [(0, 1)])
        assert provider.stats()["hits"] == 2

    def test_lifetime_counters_survive_context_switch(self):
        """Regression: context switches must not wipe cumulative history."""
        graph_a = _random_graph(20, 2, 50, seed=0)
        graph_b = _random_graph(20, 2, 50, seed=1)
        provider = SubgraphProvider(hops=1)
        provider.get_many(graph_a, [(0, 1), (0, 1)])
        provider.get_many(graph_b, [(0, 1)])
        stats = provider.stats()
        assert stats["lifetime_hits"] == 1.0
        assert stats["lifetime_misses"] == 2.0
        # The context scope rewound at the switch to graph_b.
        assert stats["context_hits"] == 0.0
        assert stats["context_misses"] == 1.0
        assert stats["hits"] == stats["lifetime_hits"]  # historical keys = lifetime

    def test_cross_split_persistence_keeps_previous_store_warm(self):
        graph_a = _random_graph(20, 2, 50, seed=0)
        graph_b = _random_graph(20, 2, 50, seed=1)
        provider = SubgraphProvider(hops=1, snapshots=2)
        first = provider.get_many(graph_a, [(0, 1)])[0]
        provider.get_many(graph_b, [(0, 1)])
        # Returning to graph_a's snapshot finds the extraction still cached.
        assert provider.get_many(graph_a, [(0, 1)])[0] is first
        # With snapshots=1 the same round trip re-extracts.
        provider_single = SubgraphProvider(hops=1, snapshots=1)
        first = provider_single.get_many(graph_a, [(0, 1)])[0]
        provider_single.get_many(graph_b, [(0, 1)])
        assert provider_single.get_many(graph_a, [(0, 1)])[0] is not first

    def test_unbatched_provider_serves_identical_subgraphs(self):
        graph = _random_graph(25, 3, 70, seed=3)
        pairs = [(int(h), int(t)) for h, t in zip(range(8), range(8, 16))]
        batched = SubgraphProvider(hops=2, batched=True).get_many(graph, pairs)
        per_pair = SubgraphProvider(hops=2, batched=False).get_many(graph, pairs)
        for left, right in zip(batched, per_pair):
            _assert_subgraphs_identical(left, right)

    def test_model_stats_expose_both_scopes(self):
        graph = _random_graph(20, 2, 40, seed=2)
        model = DEKGILP(2, config=ModelConfig(embedding_dim=4, gnn_hidden_dim=4,
                                              subgraph_hops=1), seed=0)
        model.eval()
        model.set_context(graph)
        model.score_many([Triple(0, 0, 1), Triple(0, 1, 1)])
        stats = model.subgraph_cache_stats()
        for key in ("hits", "misses", "hit_rate", "lifetime_hit_rate",
                    "context_hits", "context_misses", "context_hit_rate",
                    "policy", "entries", "capacity"):
            assert key in stats
        assert stats["hits"] == stats["lifetime_hits"]
        # Re-binding the same graph keeps the snapshot (and the history).
        model.set_context(graph)
        model.score_many([Triple(0, 0, 1)])
        assert model.subgraph_cache_stats()["lifetime_misses"] == stats["lifetime_misses"]

    def test_trainer_records_lifetime_hit_rate(self):
        graph = _random_graph(20, 2, 60, seed=4)
        config = ModelConfig(embedding_dim=4, gnn_hidden_dim=4, subgraph_hops=1,
                             edge_dropout=0.0)
        model = DEKGILP(2, config=config, seed=0)
        trainer = Trainer(model, graph, TrainingConfig(epochs=2, batch_size=16, seed=0))
        history = trainer.fit()
        last = history.records[-1]
        assert 0.0 < last.cache_hit_rate <= 1.0
        assert 0.0 < last.lifetime_cache_hit_rate <= 1.0
        # The lifetime rate accumulates over both epochs, so it cannot exceed
        # the warm epoch's rate.
        assert last.lifetime_cache_hit_rate <= last.cache_hit_rate + 1e-12


class TestProviderPinningIntegration:
    def test_trainer_pins_positive_pairs_under_corruption_aware_policy(self):
        graph = _random_graph(25, 2, 60, seed=6)
        config = ModelConfig(embedding_dim=4, gnn_hidden_dim=4, subgraph_hops=1,
                             edge_dropout=0.0,
                             subgraph_cache_policy="corruption_aware",
                             subgraph_cache_size=64)
        model = DEKGILP(2, config=config, seed=0)
        Trainer(model, graph, TrainingConfig(epochs=2, batch_size=8, seed=0)).fit()
        policy = model.subgraph_provider._stores[0][1]
        # Every training positive stays resident across the corruption churn.
        positives = {(t.head, t.tail) for t in graph.triples}
        assert positives <= set(policy._pinned)
        # ... and the pin budget is bounded by the capacity.
        assert policy.max_pinned == 64

    def test_pin_budget_is_bounded(self):
        policy = CorruptionAwarePolicy(capacity=3)
        policy.pin((i, i + 1) for i in range(10))
        assert len(policy._pin_keys) == 3  # max_pinned defaults to capacity
        late = (99, 100)
        policy.pin([late])
        policy.put(late, "overflow")       # unpinned: ordinary LRU citizen
        for churn in range(200, 206):
            policy.put((churn, churn + 1), "corrupt")
        assert policy.get(late) is None

    def test_tiny_pinned_cache_matches_unlimited_cache_losses(self):
        graph = _random_graph(25, 2, 60, seed=6)

        def run(policy, size):
            config = ModelConfig(embedding_dim=4, gnn_hidden_dim=4,
                                 subgraph_hops=1, edge_dropout=0.0,
                                 subgraph_cache_policy=policy,
                                 subgraph_cache_size=size)
            model = DEKGILP(2, config=config, seed=0)
            trainer = Trainer(model, graph,
                              TrainingConfig(epochs=2, batch_size=8, seed=0))
            return trainer.fit().losses()

        np.testing.assert_allclose(run("corruption_aware", 2),
                                   run("lru", 4096), rtol=0, atol=1e-12)


class TestShareProvider:
    """The cross-model seam the serving layer builds on."""

    @staticmethod
    def _build(name, graph):
        from repro.registry import build_model
        model = build_model(name, num_entities=graph.num_entities,
                            num_relations=graph.num_relations,
                            embedding_dim=4, seed=0)
        model.set_context(graph)
        return model

    def test_same_signature_models_adopt_one_provider(self):
        graph = _random_graph(20, 2, 50, seed=7)
        # DEKG-ILP-N (GraIL labeling), Grail and TACT all extract with
        # (hops=2, improved_labeling=False, max_nodes=150).
        models = [self._build(n, graph) for n in ("DEKG-ILP-N", "Grail", "TACT")]
        triples = [Triple(0, 0, 1), Triple(2, 1, 3)]
        before = {m.name: [float(s) for s in m.score_many(triples)]
                  for m in models}
        shared = share_provider(models)
        assert shared is not None
        assert all(m.subgraph_provider is shared for m in models)
        # Sharing the cache must not move a single score.
        for model in models:
            assert [float(s) for s in model.score_many(triples)] == before[model.name]
        stats = shared.stats()
        # Second and third models hit what the first extracted.
        assert stats["lifetime_hits"] > 0

    def test_signature_mismatch_raises(self):
        graph = _random_graph(20, 2, 50, seed=7)
        # DEKG-ILP uses improved labeling; Grail does not.
        models = [self._build(n, graph) for n in ("DEKG-ILP", "Grail")]
        with pytest.raises(ValueError, match="extraction signature"):
            share_provider(models)

    def test_no_provider_backed_models_returns_none(self):
        graph = _random_graph(20, 2, 50, seed=7)
        models = [self._build(n, graph) for n in ("TransE", "DistMult")]
        assert share_provider(models) is None

    def test_embedding_models_are_skipped_not_rejected(self):
        graph = _random_graph(20, 2, 50, seed=7)
        grail = self._build("Grail", graph)
        transe = self._build("TransE", graph)
        shared = share_provider([grail, transe])
        assert shared is grail.subgraph_provider
        assert not hasattr(transe, "subgraph_provider") or \
            getattr(transe, "subgraph_provider", None) is None

    def test_capacity_takes_the_largest_adoptee(self):
        graph = _random_graph(20, 2, 50, seed=7)
        a = self._build("Grail", graph)
        b = self._build("TACT", graph)
        big = max(a.subgraph_provider.cache_size, b.subgraph_provider.cache_size)
        shared = share_provider([a, b])
        assert shared.cache_size == big

    def test_use_subgraph_provider_rejects_wrong_signature(self):
        graph = _random_graph(20, 2, 50, seed=7)
        dekg = self._build("DEKG-ILP", graph)
        grail = self._build("Grail", graph)
        with pytest.raises(ValueError):
            dekg.use_subgraph_provider(grail.subgraph_provider)
