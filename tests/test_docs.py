"""Documentation checks: the markdown files exist and their links resolve.

This is the test the CI ``docs`` job runs.  It walks every markdown link in
``README.md`` and ``docs/``, and asserts that relative targets point at files
that actually exist in the repository — the failure mode it guards against is
a rename or deletion silently orphaning the docs.  External (``http(s)``,
``mailto``) links and pure in-page anchors are not fetched.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target), tolerating an optional title.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
#: Fenced code blocks, removed before link extraction (may hold example links).
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)

REQUIRED_DOCS = [
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/BENCHMARKS.md",
    "ROADMAP.md",
    "CHANGES.md",
]


def _markdown_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return files


def _relative_links(markdown_path: Path):
    text = _CODE_FENCE.sub("", markdown_path.read_text(encoding="utf-8"))
    for match in _LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]  # drop in-file anchors


def test_required_docs_exist():
    missing = [name for name in REQUIRED_DOCS if not (REPO_ROOT / name).is_file()]
    assert not missing, f"missing documentation files: {missing}"


@pytest.mark.parametrize("markdown_path", _markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(markdown_path):
    broken = []
    for target in _relative_links(markdown_path):
        resolved = (markdown_path.parent / target).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{markdown_path.relative_to(REPO_ROOT)} has broken relative links: {broken}")


def test_readme_documents_the_cli_and_eval_workers():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for required in ("dataset", "evaluate", "compare", "complexity",
                     "--eval-workers", "python -m pytest -x -q"):
        assert required in readme, f"README.md no longer documents {required!r}"
