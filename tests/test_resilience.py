"""Tests for the fault-tolerant execution layer.

Covers the fault-injection grammar and hooks, the atomic-write helpers, the
supervised pool's recovery paths (error retry, timeout reassignment, attempt
exhaustion, in-process degradation, interruption), the training resume
journal, and the checkpoint-error chaining in ``make_model_spec``.

Pool tests use module-level task functions: ``SupervisedPool`` spawns fresh
interpreters, so everything shipped to a worker must be importable by name.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.autodiff.optim import Adam
from repro.autodiff.tensor import Tensor
from repro.core.config import ModelConfig, TrainingConfig
from repro.core.model import DEKGILP
from repro.core.trainer import Trainer
from repro.eval.sharding import make_model_spec
from repro.resilience import (FaultInjected, FaultPlan, RetryPolicy,
                              SupervisedPool, active_plan, atomic_write_bytes,
                              atomic_write_json, atomic_write_text, fire,
                              install_fault_plan, mangle, reset_fault_state)
from repro.resilience import atomic as atomic_module


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """Every test starts and ends without an installed plan or counters."""
    reset_fault_state()
    yield
    reset_fault_state()


# --------------------------------------------------------------------- #
# fault plan grammar and hooks
# --------------------------------------------------------------------- #
class TestFaultPlan:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "shard:2:kill, shard:0:hang:30,epoch:1@1:raise,shard:*:raise")
        kill, hang, retry_raise, wildcard = plan.specs
        assert (kill.site, kill.index, kill.attempt, kill.action) == \
            ("shard", 2, 0, "kill")
        assert (hang.action, hang.arg) == ("hang", 30.0)
        assert (retry_raise.site, retry_raise.index, retry_raise.attempt) == \
            ("epoch", 1, 1)
        assert wildcard.index is None

    def test_match_is_keyed_by_site_index_attempt(self):
        plan = FaultPlan.parse("shard:1:raise,shard:2@1:raise")
        assert plan.match("shard", 1, attempt=0) is not None
        assert plan.match("shard", 1, attempt=1) is None      # retries recover
        assert plan.match("shard", 2, attempt=0) is None      # armed for retry
        assert plan.match("shard", 2, attempt=1) is not None
        assert plan.match("epoch", 1, attempt=0) is None      # other site

    def test_wildcard_matches_every_index(self):
        plan = FaultPlan.parse("shard:*:raise")
        assert plan.match("shard", 0) is not None
        assert plan.match("shard", 99) is not None

    @pytest.mark.parametrize("text", [
        "shard:1",                 # too few fields
        "shard:1:explode",         # unknown action
        "shard:1:kill:3",          # kill takes no argument
        "shard:1:hang:3:4",        # too many fields
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_env_plan_and_programmatic_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "shard:3:raise")
        assert active_plan().match("shard", 3) is not None
        install_fault_plan(None)             # explicit opt-out beats the env
        assert active_plan() is None
        reset_fault_state()                  # back to deferring to the env
        assert active_plan().match("shard", 3) is not None

    def test_fire_raise_and_interrupt(self):
        install_fault_plan("shard:1:raise,epoch:2:interrupt")
        fire("shard", 0)                     # non-matching: no-op
        with pytest.raises(FaultInjected) as excinfo:
            fire("shard", 1)
        assert (excinfo.value.site, excinfo.value.index) == ("shard", 1)
        with pytest.raises(KeyboardInterrupt):
            fire("epoch", 2)

    def test_mangle_counts_payloads_per_site(self):
        install_fault_plan("checkpoint:1:corrupt:2,checkpoint:2:truncate:3")
        data = b"abcdef"
        assert mangle("checkpoint", data) == data             # payload 0: clean
        flipped = mangle("checkpoint", data)                  # payload 1
        assert flipped != data and flipped[2] == data[2] ^ 0xFF
        assert mangle("checkpoint", data) == b"abc"           # payload 2
        assert mangle("other-site", data) == data             # site isolation

    def test_mangle_without_plan_is_identity(self):
        assert mangle("checkpoint", b"payload") == b"payload"


# --------------------------------------------------------------------- #
# atomic writes
# --------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_bytes_roundtrip_and_overwrite(self, tmp_path):
        path = tmp_path / "artifact.bin"
        assert atomic_write_bytes(path, b"one") == path
        assert path.read_bytes() == b"one"
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]

    def test_creates_missing_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "artifact.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"

    def test_json_roundtrip(self, tmp_path):
        path = atomic_write_json(tmp_path / "m.json", {"mrr": 0.5, "runs": [1, 2]})
        assert json.loads(path.read_text()) == {"mrr": 0.5, "runs": [1, 2]}

    def test_failed_write_leaves_no_temporary(self, tmp_path, monkeypatch):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(path, b"intact")

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(atomic_module.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"torn")
        # The prior artifact survives untouched and no .tmp file leaks.
        assert path.read_bytes() == b"intact"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]


# --------------------------------------------------------------------- #
# supervised pool
# --------------------------------------------------------------------- #
def _double(index, payload, attempt):
    return payload * 2


def _flaky_once(index, payload, attempt):
    """Index 1 fails its first attempt, succeeds on retry."""
    if index == 1 and attempt == 0:
        raise ValueError("transient failure")
    return payload * 2


def _always_fails_index_zero(index, payload, attempt):
    if index == 0:
        raise ValueError("permanent failure")
    return payload * 2


def _hangs_first_attempt(index, payload, attempt):
    if index == 0 and attempt == 0:
        time.sleep(60)
    return payload * 2


def _kills_first_attempt(index, payload, attempt):
    if index == 0 and attempt == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return payload * 2


def _sleepy(index, payload, attempt):
    time.sleep(30)
    return payload


def _fallback(index, payload):
    return payload * 2


_FAST = dict(backoff_base=0.01, poll_interval=0.01)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1)
        RetryPolicy(timeout=None)  # deadlines off is a valid configuration

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=0.35)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.35)  # capped


class TestSupervisedPool:
    def test_results_ordered_like_pool_map(self):
        pool = SupervisedPool(processes=2, policy=RetryPolicy(**_FAST))
        assert pool.run(_double, [1, 2, 3, 4, 5], _fallback) == [2, 4, 6, 8, 10]
        assert pool.events == []

    def test_empty_payloads(self):
        assert SupervisedPool(processes=1).run(_double, [], _fallback) == []

    def test_processes_must_be_positive(self):
        with pytest.raises(ValueError):
            SupervisedPool(processes=0)

    def test_worker_error_is_retried(self):
        pool = SupervisedPool(processes=2, policy=RetryPolicy(**_FAST))
        events = []
        results = pool.run(_flaky_once, [10, 20, 30], _fallback,
                           on_event=events.append)
        assert results == [20, 40, 60]
        kinds = [event.kind for event in events]
        assert "error" in kinds and "retry" in kinds

    def test_exhausted_attempts_degrade_to_fallback(self):
        pool = SupervisedPool(processes=2,
                              policy=RetryPolicy(max_attempts=2, **_FAST))
        results = pool.run(_always_fails_index_zero, [10, 20], _fallback)
        assert results == [20, 40]  # index 0 completed in-process
        kinds = [event.kind for event in pool.events]
        assert kinds.count("error") == 2 and "fallback" in kinds

    def test_hung_task_is_reassigned_before_completion(self):
        pool = SupervisedPool(
            processes=2, policy=RetryPolicy(timeout=1.0, **_FAST))
        results = pool.run(_hangs_first_attempt, [10, 20], _fallback)
        assert results == [20, 40]
        kinds = [event.kind for event in pool.events]
        assert "timeout" in kinds

    def test_killed_worker_fails_its_task_immediately(self):
        pool = SupervisedPool(
            processes=2, policy=RetryPolicy(timeout=30.0, **_FAST))
        start = time.monotonic()
        results = pool.run(_kills_first_attempt, [10, 20], _fallback)
        assert results == [20, 40]
        # Detected via worker liveness, not by waiting out the 30s deadline.
        assert time.monotonic() - start < 25.0
        assert "worker-died" in [event.kind for event in pool.events]

    def test_interrupt_reports_progress_and_reraises(self):
        # An injected parent-side interrupt on the supervision loop's third
        # poll tick, while every task sleeps: no shard can have completed.
        install_fault_plan("supervisor:2:interrupt")
        pool = SupervisedPool(processes=2, policy=RetryPolicy(**_FAST))
        progress = []
        with pytest.raises(KeyboardInterrupt):
            pool.run(_sleepy, [1, 2], _fallback,
                     on_interrupt=lambda done, total: progress.append((done, total)))
        assert progress == [(0, 2)]


# --------------------------------------------------------------------- #
# make_model_spec error chaining
# --------------------------------------------------------------------- #
class TestMakeModelSpecDiagnostics:
    @pytest.fixture
    def model(self):
        return DEKGILP(3, config=ModelConfig(embedding_dim=8, gnn_hidden_dim=8),
                       seed=0)

    def test_checkpoint_failure_warns_and_falls_back_to_pickle(
            self, model, monkeypatch):
        def broken_checkpoint(m):
            raise RuntimeError("checkpoint writer exploded")

        monkeypatch.setattr("repro.core.persistence.model_to_bytes",
                            broken_checkpoint)
        with pytest.warns(RuntimeWarning, match="checkpoint writer exploded"):
            spec = make_model_spec(model)
        assert spec.kind == "pickle"

    def test_double_failure_chains_the_checkpoint_error(self, model, monkeypatch):
        def broken_checkpoint(m):
            raise RuntimeError("checkpoint writer exploded")

        def broken_pickle(obj, *args, **kwargs):
            raise pickle.PicklingError("unpicklable closure")

        monkeypatch.setattr("repro.core.persistence.model_to_bytes",
                            broken_checkpoint)
        monkeypatch.setattr("repro.eval.sharding.pickle.dumps", broken_pickle)
        with pytest.warns(RuntimeWarning):
            with pytest.raises(TypeError, match="checkpoint serialization failed"
                               ) as excinfo:
                make_model_spec(model)
        # The root cause (the checkpoint error) is chained, not discarded.
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "checkpoint writer exploded" in str(excinfo.value.__cause__)


# --------------------------------------------------------------------- #
# training journal / resume
# --------------------------------------------------------------------- #
def _make_trainer(graph, journal_path=None, seed=0, epochs=2,
                  checkpoint_every=1):
    config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, edge_dropout=0.5)
    training = TrainingConfig(epochs=epochs, batch_size=4,
                              contrastive_examples=1, seed=seed,
                              checkpoint_every=checkpoint_every)
    model = DEKGILP(3, config=config, seed=seed)
    return Trainer(model, graph, training, journal_path=journal_path)


class TestTrainingResume:
    def test_resumed_run_is_bit_identical(self, tiny_graph, tmp_path):
        journal = tmp_path / "journal.npz"
        straight = _make_trainer(tiny_graph)
        straight.fit()

        interrupted = _make_trainer(tiny_graph, journal_path=journal)
        interrupted.fit(epochs=1)            # journal written after epoch 0
        assert journal.exists()

        resumed = _make_trainer(tiny_graph, journal_path=journal)
        assert resumed.restore_journal() == 1
        resumed.fit()

        # Bit-identical final parameters despite the restart (dropout is on,
        # so any RNG drift between the two runs would show here).
        for name, value in straight.model.state_dict().items():
            np.testing.assert_array_equal(
                value, resumed.model.state_dict()[name], err_msg=name)
        assert len(resumed.history.records) == 2

    def test_restore_rejects_model_checkpoint(self, tiny_graph, tmp_path):
        from repro.core.persistence import save_model

        trainer = _make_trainer(tiny_graph)
        path = save_model(trainer.model, tmp_path / "model.npz")
        with pytest.raises(ValueError, match="not a training journal"):
            trainer.restore_journal(path)

    def test_restore_rejects_seed_mismatch(self, tiny_graph, tmp_path):
        journal = tmp_path / "journal.npz"
        writer = _make_trainer(tiny_graph, journal_path=journal)
        writer.fit(epochs=1)
        reader = _make_trainer(tiny_graph, journal_path=journal, seed=1)
        with pytest.raises(ValueError, match="seed"):
            reader.restore_journal()

    def test_journal_requires_a_path(self, tiny_graph):
        trainer = _make_trainer(tiny_graph)
        with pytest.raises(ValueError, match="no journal path"):
            trainer.write_journal()
        with pytest.raises(ValueError, match="no journal path"):
            trainer.restore_journal()

    def test_interrupted_fit_flushes_progress_record(self, tiny_graph, tmp_path):
        journal = tmp_path / "journal.npz"
        install_fault_plan("epoch:1:interrupt")  # Ctrl-C at the start of epoch 1
        trainer = _make_trainer(tiny_graph, journal_path=journal)
        with pytest.raises(KeyboardInterrupt):
            trainer.fit()
        record = json.loads((tmp_path / "journal.progress.json").read_text())
        assert record["kind"] == "training-interrupt"
        assert record["completed_epochs"] == 1
        assert record["target_epochs"] == 2
        assert record["journal"] == str(journal)

    def test_checkpoint_every_zero_writes_no_journal(self, tiny_graph, tmp_path):
        journal = tmp_path / "journal.npz"
        trainer = _make_trainer(tiny_graph, journal_path=journal,
                                checkpoint_every=0)
        trainer.fit()
        assert not journal.exists()


class TestAdamStateDict:
    def test_roundtrip(self):
        params = [Tensor(np.ones((2, 2)), requires_grad=True),
                  Tensor(np.zeros(3), requires_grad=True)]
        optimizer = Adam(params, lr=0.1)
        for _ in range(3):
            for param in params:
                param.grad = np.ones_like(param.data)
            optimizer.step()
        state = optimizer.state_dict()

        fresh = Adam([Tensor(np.ones((2, 2)), requires_grad=True),
                      Tensor(np.zeros(3), requires_grad=True)], lr=0.1)
        fresh.load_state_dict(state)
        assert fresh._step == optimizer._step
        for restored, original in zip(fresh._m, optimizer._m):
            np.testing.assert_array_equal(restored, original)
        for restored, original in zip(fresh._v, optimizer._v):
            np.testing.assert_array_equal(restored, original)

    def test_load_rejects_wrong_shapes(self):
        optimizer = Adam([Tensor(np.ones((2, 2)), requires_grad=True)])
        state = optimizer.state_dict()
        other = Adam([Tensor(np.ones(5), requires_grad=True)])
        with pytest.raises(ValueError):
            other.load_state_dict(state)
