"""Batched-training equivalence, batched sampling, and optimizer-state tests.

The batched Trainer path must be a pure performance change: same negatives,
same contrastive pairs, same losses, same parameter trajectory as the
sequential per-triple path under a fixed seed — with edge dropout disabled
*and* enabled.  Dropout masks are counter-seeded per
``(seed, epoch, layer, edge)`` (:mod:`repro.gnn.edge_dropout`), so an edge's
keep/drop decision does not depend on how subgraphs are batched into union
graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ModelConfig, TrainingConfig
from repro.core.contrastive import ContrastiveSampler
from repro.core.model import DEKGILP
from repro.core.trainer import Trainer
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import NegativeSampler
from repro.kg.triple import Triple


@pytest.fixture(scope="module")
def training_graph() -> KnowledgeGraph:
    """A 40-entity synthetic KG big enough for multi-batch epochs."""
    rng = np.random.default_rng(11)
    tuples = sorted({
        (int(h), int(r), int(t))
        for h, r, t in zip(rng.integers(0, 40, 120),
                           rng.integers(0, 4, 120),
                           rng.integers(0, 40, 120))
    })
    return KnowledgeGraph(40, 4, [Triple(*t) for t in tuples])


def _fit(graph: KnowledgeGraph, batched: bool, epochs: int = 2,
         use_semantic: bool = True, use_topological: bool = True,
         edge_dropout: float = 0.0):
    model_config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8,
                               edge_dropout=edge_dropout,
                               use_semantic=use_semantic,
                               use_topological=use_topological)
    training_config = TrainingConfig(epochs=epochs, batch_size=8, seed=0,
                                     batched=batched, contrastive_examples=1)
    model = DEKGILP(graph.num_relations, config=model_config, seed=0)
    trainer = Trainer(model, graph, training_config)
    history = trainer.fit()
    return model, trainer, history


class TestBatchedSequentialEquivalence:
    def test_epoch_losses_match(self, training_graph):
        _, _, batched = _fit(training_graph, batched=True)
        _, _, sequential = _fit(training_graph, batched=False)
        np.testing.assert_allclose(batched.losses(), sequential.losses(),
                                   rtol=0.0, atol=1e-8)
        for record_b, record_s in zip(batched.records, sequential.records):
            assert record_b.ranking_loss == pytest.approx(record_s.ranking_loss, abs=1e-8)
            assert record_b.contrastive_loss == pytest.approx(record_s.contrastive_loss, abs=1e-8)

    def test_post_epoch_parameters_match(self, training_graph):
        model_b, _, _ = _fit(training_graph, batched=True)
        model_s, _, _ = _fit(training_graph, batched=False)
        for (name, param_b), (_, param_s) in zip(model_b.named_parameters(),
                                                 model_s.named_parameters()):
            np.testing.assert_allclose(
                param_b.data, param_s.data, rtol=0.0, atol=1e-8,
                err_msg=f"parameter {name} diverged between batched and sequential")

    def test_epoch_losses_match_with_dropout_enabled(self, training_graph):
        """Counter-seeded masks make the two paths equal with dropout ON."""
        model_b, _, batched = _fit(training_graph, batched=True, edge_dropout=0.5)
        model_s, _, sequential = _fit(training_graph, batched=False, edge_dropout=0.5)
        np.testing.assert_allclose(batched.losses(), sequential.losses(),
                                   rtol=0.0, atol=1e-8)
        for (name, param_b), (_, param_s) in zip(model_b.named_parameters(),
                                                 model_s.named_parameters()):
            np.testing.assert_allclose(
                param_b.data, param_s.data, rtol=0.0, atol=1e-8,
                err_msg=f"parameter {name} diverged with dropout enabled")

    def test_dropout_masks_redraw_across_epochs_and_differ_from_off(self, training_graph):
        model, _, with_dropout = _fit(training_graph, batched=True, epochs=2,
                                      edge_dropout=0.5)
        _, _, without = _fit(training_graph, batched=True, epochs=2)
        assert with_dropout.losses() != without.losses()
        # The trainer must have advanced the dropout clock every epoch —
        # frozen-clock regressions would silently reuse epoch-0 masks.
        assert model.gsm.encoder.dropout_clock.epoch == 1

    def test_equivalence_holds_per_module_ablation(self, training_graph):
        for use_semantic, use_topological in ((True, False), (False, True)):
            _, _, batched = _fit(training_graph, batched=True, epochs=1,
                                 use_semantic=use_semantic,
                                 use_topological=use_topological)
            _, _, sequential = _fit(training_graph, batched=False, epochs=1,
                                    use_semantic=use_semantic,
                                    use_topological=use_topological)
            np.testing.assert_allclose(batched.losses(), sequential.losses(),
                                       rtol=0.0, atol=1e-8)

    def test_forward_batch_matches_stacked_forward(self, training_graph):
        model, _, _ = _fit(training_graph, batched=True, epochs=1)
        model.eval()
        triples = training_graph.triples[:6] + [Triple(0, 1, 39), Triple(39, 0, 3)]
        batch_scores = model.forward_batch(triples).data
        single_scores = np.array([float(model.forward(t).data) for t in triples])
        np.testing.assert_allclose(batch_scores, single_scores, atol=1e-10)

    def test_cache_hit_rate_reported_for_batched_epochs(self, training_graph):
        _, trainer, history = _fit(training_graph, batched=True, epochs=2)
        # Epoch 2 re-scores every positive through the warm LRU.
        assert history.records[-1].cache_hit_rate > 0.0
        stats = trainer.model.subgraph_cache_stats()
        assert stats["hits"] > 0 and stats["misses"] > 0
        assert 0.0 < stats["hit_rate"] < 1.0
        trainer.model.reset_subgraph_cache_stats()
        assert np.isnan(trainer.model.subgraph_cache_stats()["hit_rate"])

    def test_sequential_epochs_report_nan_hit_rate(self, training_graph):
        _, _, history = _fit(training_graph, batched=False, epochs=1)
        assert np.isnan(history.records[0].cache_hit_rate)


class TestBatchedNegativeSampler:
    def test_deterministic_per_seed(self, training_graph):
        triples = training_graph.triples[:10]
        first = NegativeSampler(training_graph, num_negatives=3, seed=9).sample_batch(triples)
        second = NegativeSampler(training_graph, num_negatives=3, seed=9).sample_batch(triples)
        assert first == second
        third = NegativeSampler(training_graph, num_negatives=3, seed=10).sample_batch(triples)
        assert first != third

    def test_shapes_and_filtering(self, training_graph):
        triples = training_graph.triples[:10]
        batches = NegativeSampler(training_graph, num_negatives=2, seed=0).sample_batch(triples)
        assert len(batches) == 10
        for positive, negatives in zip(triples, batches):
            assert len(negatives) == 2
            for negative in negatives:
                assert negative not in training_graph
                assert negative.relation == positive.relation
                # exactly one endpoint is corrupted
                assert (negative.head != positive.head) != (negative.tail != positive.tail)

    def test_empty_batch(self, training_graph):
        assert NegativeSampler(training_graph, seed=0).sample_batch([]) == []


class TestBatchedContrastiveSampler:
    def test_shapes_and_entity_major_order(self):
        rng = np.random.default_rng(2)
        tables = np.abs(rng.normal(2.0, 1.0, size=(5, 4))).round()
        sampler = ContrastiveSampler(seed=1)
        anchors, positives, negatives = sampler.sample_pairs_batch(tables, num_pairs=3)
        assert anchors.shape == positives.shape == negatives.shape == (15, 4)
        np.testing.assert_array_equal(anchors[0:3], np.repeat(tables[:1], 3, axis=0))

    def test_deterministic_per_seed(self):
        tables = np.array([[2.0, 0.0, 1.0], [0.0, 3.0, 1.0]])
        a1 = ContrastiveSampler(seed=4).sample_pairs_batch(tables, num_pairs=2)
        a2 = ContrastiveSampler(seed=4).sample_pairs_batch(tables, num_pairs=2)
        for first, second in zip(a1, a2):
            np.testing.assert_array_equal(first, second)

    def test_positive_preserves_support_negative_changes_it(self):
        # o1 (variation) only rewrites counts of already-present relations, so
        # the positive's support must equal the anchor's; o2/o3 change it.
        tables = np.array([[2.0, 0.0, 1.0, 4.0]] * 8)
        sampler = ContrastiveSampler(seed=0)
        anchors, positives, negatives = sampler.sample_pairs_batch(tables, num_pairs=1)
        np.testing.assert_array_equal(positives > 0, anchors > 0)
        assert any(((n > 0) != (a > 0)).any() for n, a in zip(negatives, anchors))

    def test_all_zero_row_survives(self):
        tables = np.zeros((3, 4))
        sampler = ContrastiveSampler(seed=0)
        anchors, positives, negatives = sampler.sample_pairs_batch(tables, num_pairs=1)
        np.testing.assert_array_equal(positives, anchors)  # no present relation to vary
        # additions can still fire on the all-zero rows
        assert negatives.shape == (3, 4)


class TestSkippedBatchOptimizerState:
    def test_skipped_batch_leaves_adam_state_untouched(self, training_graph):
        """A non-finite batch must not advance Adam's step/moment buffers."""
        model_config = ModelConfig(embedding_dim=8, gnn_hidden_dim=8, edge_dropout=0.0)
        training_config = TrainingConfig(epochs=1, batch_size=8, seed=0, batched=True)
        model = DEKGILP(training_graph.num_relations, config=model_config, seed=0)
        trainer = Trainer(model, training_graph, training_config)

        def poisoned_loss(batch):
            return (model.clrm.relation_features * np.nan).sum()

        trainer._ranking_loss = poisoned_loss
        params_before = {name: p.data.copy() for name, p in model.named_parameters()}
        step_before = trainer.optimizer._step
        m_before = [m.copy() for m in trainer.optimizer._m]
        v_before = [v.copy() for v in trainer.optimizer._v]

        record = trainer.train_epoch(0)

        assert record.skipped_batches > 0
        assert trainer.optimizer._step == step_before
        for m_now, m_then in zip(trainer.optimizer._m, m_before):
            np.testing.assert_array_equal(m_now, m_then)
        for v_now, v_then in zip(trainer.optimizer._v, v_before):
            np.testing.assert_array_equal(v_now, v_then)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, params_before[name],
                                          err_msg=f"{name} moved on a skipped batch")
