"""Tests for Module/Parameter, layers and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import init
from repro.autodiff.layers import Dropout, Embedding, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.autodiff.module import Module, Parameter
from repro.autodiff.optim import SGD, Adam, clip_grad_norm
from repro.autodiff.tensor import Tensor


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.linear1 = Linear(3, 4, rng=np.random.default_rng(0))
        self.linear2 = Linear(4, 1, rng=np.random.default_rng(1))
        self.dropout = Dropout(0.5, rng=np.random.default_rng(2))
        self.layers = [Linear(2, 2, rng=np.random.default_rng(3))]
        self.lookup = {"embed": Embedding(5, 3, rng=np.random.default_rng(4))}

    def forward(self, x):
        return self.linear2(self.dropout(self.linear1(x).relu()))


class TestModule:
    def test_parameters_discovered_recursively(self):
        net = TinyNet()
        names = dict(net.named_parameters())
        assert "linear1.weight" in names
        assert "linear1.bias" in names
        assert "layers.0.weight" in names
        assert "lookup.embed.weight" in names
        assert len(net.parameters()) == 7

    def test_num_parameters(self):
        net = TinyNet()
        expected = 3 * 4 + 4 + 4 * 1 + 1 + 2 * 2 + 2 + 5 * 3
        assert net.num_parameters() == expected

    def test_train_eval_toggle(self):
        net = TinyNet()
        net.eval()
        assert not net.dropout.training
        net.train()
        assert net.dropout.training

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net = TinyNet()
        state = net.state_dict()
        other = TinyNet()
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.linear1.weight.data, net.linear1.weight.data)

    def test_state_dict_copies(self):
        net = TinyNet()
        state = net.state_dict()
        state["linear1.weight"][:] = 0
        assert not np.all(net.linear1.weight.data == 0)

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["linear1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_state_dict_key_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("linear1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(3, 5)
        out = layer(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 5)

    def test_linear_no_bias(self):
        layer = Linear(3, 5, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_gradients_flow(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_embedding_lookup(self):
        table = Embedding(4, 3, rng=np.random.default_rng(0))
        out = table(np.array([1, 3]))
        np.testing.assert_array_equal(out.data[0], table.weight.data[1])
        np.testing.assert_array_equal(out.data[1], table.weight.data[3])

    def test_embedding_out_of_range(self):
        table = Embedding(4, 3)
        with pytest.raises(IndexError):
            table(np.array([4]))

    def test_embedding_gradient_sparse(self):
        table = Embedding(4, 3, rng=np.random.default_rng(0))
        table(np.array([1, 1])).sum().backward()
        grad = table.weight.grad
        np.testing.assert_array_equal(grad[0], np.zeros(3))
        np.testing.assert_array_equal(grad[1], 2 * np.ones(3))

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_dropout_eval_identity(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones(100))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_activation_modules(self):
        assert ReLU()(Tensor([-1.0, 1.0])).data.tolist() == [0.0, 1.0]
        assert Sigmoid()(Tensor([0.0])).data[0] == pytest.approx(0.5)
        assert Tanh()(Tensor([0.0])).data[0] == 0.0

    def test_sequential(self):
        model = Sequential([Linear(2, 4, rng=np.random.default_rng(0)), ReLU(),
                            Linear(4, 1, rng=np.random.default_rng(1))])
        out = model(Tensor(np.ones((3, 2))))
        assert out.shape == (3, 1)
        assert len(model.parameters()) == 4


class TestInit:
    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        values = init.xavier_uniform((50, 60), rng=rng)
        limit = np.sqrt(6.0 / 110)
        assert np.all(np.abs(values) <= limit)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        values = init.xavier_normal((200, 300), rng=rng)
        assert values.std() == pytest.approx(np.sqrt(2.0 / 500), rel=0.1)

    def test_uniform_and_normal_and_zeros(self):
        rng = np.random.default_rng(0)
        assert np.all(np.abs(init.uniform((10,), -0.5, 0.5, rng=rng)) <= 0.5)
        assert init.normal((10000,), std=0.02, rng=rng).std() == pytest.approx(0.02, rel=0.1)
        assert np.all(init.zeros((3, 3)) == 0)


def quadratic_loss(parameter: Parameter) -> Tensor:
    return ((parameter - Tensor([3.0, -2.0])) ** 2).sum()


class TestOptimizers:
    def test_sgd_converges_on_quadratic(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-3)

    def test_sgd_momentum_converges(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        param = Parameter(np.zeros(2))
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_skip_parameters_without_grad(self):
        used = Parameter(np.array([1.0]))
        unused = Parameter(np.array([5.0]))
        optimizer = Adam([used, unused], lr=0.1)
        (used * 2.0).sum().backward()
        optimizer.step()
        assert unused.data[0] == 5.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        param = Parameter(np.array([1.0, 1.0]))
        param.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_no_grads(self):
        param = Parameter(np.array([1.0]))
        assert clip_grad_norm([param], 1.0) == 0.0

    def test_clip_grad_norm_zeroes_nan_gradients(self):
        # Regression: nan > max_norm is False, so poisoned gradients used to
        # pass through unclipped while the returned "norm" was NaN.
        param = Parameter(np.array([1.0, 1.0]))
        param.grad = np.array([np.nan, 1.0])
        norm = clip_grad_norm([param], max_norm=1.0)
        assert not np.isfinite(norm)
        np.testing.assert_array_equal(param.grad, np.zeros(2))

    def test_clip_grad_norm_zeroes_inf_gradients(self):
        healthy = Parameter(np.array([1.0]))
        healthy.grad = np.array([2.0])
        poisoned = Parameter(np.array([1.0]))
        poisoned.grad = np.array([np.inf])
        norm = clip_grad_norm([healthy, poisoned], max_norm=1.0)
        assert not np.isfinite(norm)
        # The whole step is skipped, not just the poisoned parameter.
        np.testing.assert_array_equal(healthy.grad, np.zeros(1))
        np.testing.assert_array_equal(poisoned.grad, np.zeros(1))

    def test_clip_grad_norm_error_if_nonfinite(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([np.nan])
        with pytest.raises(ValueError, match="non-finite"):
            clip_grad_norm([param], 1.0, error_if_nonfinite=True)

    def test_nonfinite_step_is_noop_through_optimizer(self):
        param = Parameter(np.array([1.0, 2.0]))
        optimizer = SGD([param], lr=0.5)
        param.grad = np.array([np.nan, np.inf])
        clip_grad_norm([param], max_norm=1.0)
        optimizer.step()
        np.testing.assert_array_equal(param.data, [1.0, 2.0])

    def test_adam_moves_on_zero_gradients(self):
        # Documents why Trainer must skip optimizer.step() outright when
        # clip_grad_norm reports a non-finite norm: Adam's momentum applies
        # a nonzero update even after the gradients are zeroed.
        param = Parameter(np.array([1.0]))
        optimizer = Adam([param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        moved = param.data.copy()
        param.grad = np.zeros(1)
        optimizer.step()
        assert param.data[0] != moved[0]
