"""Tests for every baseline model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ComplEx,
    ConvE,
    DistMult,
    GEN,
    Grail,
    HolE,
    ProjE,
    RotatE,
    RuleN,
    SimplE,
    TACT,
    TransE,
    baseline_registry,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.triple import Triple

EMBEDDING_CLASSES = [TransE, RotatE, DistMult, ConvE,
                     ComplEx, HolE, ProjE, SimplE]


@pytest.fixture
def train_graph(small_synthetic_graph):
    return small_synthetic_graph


class TestRegistry:
    # baseline_registry() is a deprecated shim over repro.registry; the old
    # contract (name → class, warning on use) is pinned here.
    def test_all_paper_baselines_present(self):
        with pytest.warns(DeprecationWarning):
            registry = baseline_registry()
        assert set(registry) == {"TransE", "RotatE", "DistMult", "ConvE",
                                 "ComplEx", "HolE", "ProjE", "SimplE",
                                 "GEN", "RuleN", "Grail", "TACT"}

    def test_registry_values_are_classes(self):
        with pytest.warns(DeprecationWarning):
            registry = baseline_registry()
        for cls in registry.values():
            assert isinstance(cls, type)


@pytest.mark.parametrize("model_cls", EMBEDDING_CLASSES)
class TestEmbeddingModels:
    def test_fit_and_score(self, model_cls, train_graph):
        model = model_cls(train_graph.num_entities, train_graph.num_relations,
                          embedding_dim=16, seed=0)
        model.fit(train_graph, epochs=1)
        score = model.score(train_graph.triples[0])
        assert np.isfinite(score)

    def test_score_many_matches_score(self, model_cls, train_graph):
        model = model_cls(train_graph.num_entities, train_graph.num_relations,
                          embedding_dim=16, seed=0)
        model.fit(train_graph, epochs=1)
        triples = train_graph.triples[:5]
        many = model.score_many(triples)
        singles = [model.score(t) for t in triples]
        np.testing.assert_allclose(many, singles, rtol=1e-10)

    def test_num_parameters_positive(self, model_cls, train_graph):
        model = model_cls(train_graph.num_entities, train_graph.num_relations, embedding_dim=8)
        assert model.num_parameters() > 0

    def test_training_separates_positive_and_negative(self, model_cls, train_graph):
        model = model_cls(train_graph.num_entities, train_graph.num_relations,
                          embedding_dim=16, seed=0, learning_rate=0.05)
        model.fit(train_graph, epochs=5)
        rng = np.random.default_rng(0)
        positives = train_graph.triples[:30]
        entity_pool = train_graph.entities()
        negatives = [Triple(int(rng.choice(entity_pool)), t.relation, int(rng.choice(entity_pool)))
                     for t in positives]
        negatives = [t for t in negatives if t not in train_graph]
        pos_mean = model.score_many(positives).mean()
        neg_mean = model.score_many(negatives).mean()
        assert pos_mean > neg_mean


class TestInductiveAdaptation:
    def test_unseen_entities_get_random_embeddings(self, train_graph):
        # Train on a graph that uses only a subset of the declared entity ids.
        sub_entities = set(train_graph.entities()[:60])
        sub = train_graph.subgraph(sub_entities)
        model = TransE(train_graph.num_entities, train_graph.num_relations,
                       embedding_dim=8, seed=0)
        before = model.entity_embeddings.weight.data.copy()
        model.fit(sub, epochs=1)
        unseen = [e for e in range(train_graph.num_entities) if e not in set(sub.entities())]
        assert unseen
        after = model.entity_embeddings.weight.data
        # unseen rows were re-randomized, i.e. not equal to their initialization
        assert not np.allclose(before[unseen], after[unseen])


class TestTransEGeometry:
    def test_perfect_translation_scores_zero_distance(self):
        model = TransE(3, 1, embedding_dim=4, seed=0)
        model.entity_embeddings.weight.data[0] = np.array([1.0, 0, 0, 0])
        model.relation_embeddings.weight.data[0] = np.array([0.0, 1, 0, 0])
        model.entity_embeddings.weight.data[1] = np.array([1.0, 1, 0, 0])
        assert model.score(Triple(0, 0, 1)) == pytest.approx(0.0, abs=1e-5)

    def test_worse_translation_scores_lower(self):
        model = TransE(3, 1, embedding_dim=4, seed=0)
        model.entity_embeddings.weight.data[0] = np.array([1.0, 0, 0, 0])
        model.relation_embeddings.weight.data[0] = np.array([0.0, 1, 0, 0])
        model.entity_embeddings.weight.data[1] = np.array([1.0, 1, 0, 0])
        model.entity_embeddings.weight.data[2] = np.array([5.0, 5, 0, 0])
        assert model.score(Triple(0, 0, 1)) > model.score(Triple(0, 0, 2))


class TestRotatEGeometry:
    def test_zero_phase_is_identity_rotation(self):
        model = RotatE(2, 1, embedding_dim=2, seed=0)
        model.relation_embeddings.weight.data[0] = np.zeros(2)
        model.entity_embeddings.weight.data[0] = np.array([1.0, 2.0, 3.0, 4.0])
        model.entity_embeddings.weight.data[1] = np.array([1.0, 2.0, 3.0, 4.0])
        assert model.score(Triple(0, 0, 1)) == pytest.approx(0.0, abs=1e-5)

    def test_entity_dim_is_doubled(self):
        model = RotatE(2, 1, embedding_dim=6)
        assert model.entity_embeddings.weight.data.shape == (2, 12)


class TestComplExGeometry:
    def test_score_matches_hermitian_product(self):
        model = ComplEx(3, 2, embedding_dim=3, seed=0)
        d = model.embedding_dim
        entities = model.entity_embeddings.weight.data
        relations = model.relation_embeddings.weight.data
        h, r, t = entities[0], relations[1], entities[2]
        expected = np.sum(h[:d] * r[:d] * t[:d]
                          + h[d:] * r[:d] * t[d:]
                          + h[:d] * r[d:] * t[d:]
                          - h[d:] * r[d:] * t[:d])
        assert model.score(Triple(0, 1, 2)) == pytest.approx(expected)

    def test_real_embeddings_reduce_to_distmult(self):
        # With all imaginary blocks zeroed, the Hermitian product collapses
        # to DistMult's symmetric trilinear form.
        model = ComplEx(3, 1, embedding_dim=4, seed=0)
        d = model.embedding_dim
        model.entity_embeddings.weight.data[:, d:] = 0.0
        model.relation_embeddings.weight.data[:, d:] = 0.0
        assert model.score(Triple(0, 0, 1)) == pytest.approx(
            model.score(Triple(1, 0, 0)))

    def test_entity_dim_is_doubled(self):
        model = ComplEx(2, 1, embedding_dim=6)
        assert model.entity_embeddings.weight.data.shape == (2, 12)


class TestHolEGeometry:
    def test_score_matches_explicit_circular_correlation(self):
        model = HolE(3, 2, embedding_dim=5, seed=0)
        h = model.entity_embeddings.weight.data[0]
        r = model.relation_embeddings.weight.data[1]
        t = model.entity_embeddings.weight.data[2]
        correlation = np.array([
            sum(h[i] * t[(k + i) % 5] for i in range(5)) for k in range(5)
        ])
        assert model.score(Triple(0, 1, 2)) == pytest.approx(r @ correlation)

    def test_correlation_is_asymmetric(self):
        model = HolE(3, 1, embedding_dim=4, seed=0)
        assert model.score(Triple(0, 0, 1)) != pytest.approx(
            model.score(Triple(1, 0, 0)), abs=1e-9)


class TestProjEGeometry:
    def test_score_matches_projection_formula(self):
        model = ProjE(3, 2, embedding_dim=4, seed=0)
        h = model.entity_embeddings.weight.data[0]
        r = model.relation_embeddings.weight.data[1]
        t = model.entity_embeddings.weight.data[2]
        combined = np.tanh(h * model.entity_scale.data
                           + r * model.relation_scale.data
                           + model.combination_bias.data)
        assert model.score(Triple(0, 1, 2)) == pytest.approx(combined @ t)

    def test_projection_vectors_are_learned(self, train_graph):
        model = ProjE(train_graph.num_entities, train_graph.num_relations,
                      embedding_dim=8, seed=0)
        before = model.entity_scale.data.copy()
        assert model.num_parameters() > 2 * model.entity_embeddings.weight.data.size // 2
        model.fit(train_graph, epochs=1)
        assert not np.allclose(before, model.entity_scale.data)


class TestSimplEGeometry:
    def test_score_averages_forward_and_inverse_products(self):
        model = SimplE(3, 2, embedding_dim=3, seed=0)
        d = model.embedding_dim
        h = model.entity_embeddings.weight.data[0]
        r = model.relation_embeddings.weight.data[1]
        t = model.entity_embeddings.weight.data[2]
        forward = np.sum(h[:d] * r[:d] * t[d:])
        inverse = np.sum(t[:d] * r[d:] * h[d:])
        assert model.score(Triple(0, 1, 2)) == pytest.approx(
            0.5 * (forward + inverse))

    def test_entity_and_relation_dims_are_doubled(self):
        model = SimplE(2, 1, embedding_dim=6)
        assert model.entity_embeddings.weight.data.shape == (2, 12)
        assert model.relation_embeddings.weight.data.shape == (1, 12)


class TestConvE:
    def test_embedding_dim_too_small_rejected(self):
        with pytest.raises(ValueError):
            ConvE(4, 2, embedding_dim=2, kernel_size=3)

    def test_patch_index_shape(self):
        model = ConvE(4, 2, embedding_dim=16, num_filters=4, kernel_size=3)
        # 16 -> 4x4 grid, stacked -> 8x4 image, 3x3 kernel -> 6x2 patches
        assert model._patch_index.shape == (12, 9)

    def test_gradients_reach_filters(self, train_graph):
        model = ConvE(train_graph.num_entities, train_graph.num_relations,
                      embedding_dim=16, seed=0)
        array = train_graph.triple_array()[:8]
        loss = model.score_batch(array[:, 0], array[:, 1], array[:, 2]).sum()
        loss.backward()
        assert model.filters.grad is not None


class TestGEN:
    def test_unseen_entity_aggregates_from_context(self, train_graph):
        model = GEN(train_graph.num_entities + 2, train_graph.num_relations,
                    embedding_dim=8, seed=0)
        model.fit(train_graph, epochs=1)
        # Give the unseen entity a neighbour in the context graph.
        context = train_graph.copy()
        unseen = train_graph.num_entities
        context = KnowledgeGraph(train_graph.num_entities + 2, train_graph.num_relations,
                                 context.triples)
        context.add_triple(Triple(unseen, 0, train_graph.entities()[0]))
        model.set_context(context)
        aggregated = model._entity_vector(unseen)
        random_vector = model.entity_embeddings.weight.data[unseen]
        assert not np.allclose(aggregated, random_vector)

    def test_unseen_entity_without_neighbors_stays_random(self, train_graph):
        model = GEN(train_graph.num_entities + 2, train_graph.num_relations,
                    embedding_dim=8, seed=0)
        model.fit(train_graph, epochs=1)
        model.set_context(train_graph)
        unseen = train_graph.num_entities + 1
        np.testing.assert_array_equal(
            model._entity_vector(unseen), model.entity_embeddings.weight.data[unseen]
        )

    def test_scores_finite(self, train_graph):
        model = GEN(train_graph.num_entities, train_graph.num_relations, embedding_dim=8, seed=0)
        model.fit(train_graph, epochs=1)
        model.set_context(train_graph)
        assert np.isfinite(model.score_many(train_graph.triples[:5])).all()


class TestRuleN:
    def test_mines_rules_on_compositional_graph(self, train_graph):
        model = RuleN(min_support=2, min_confidence=0.01)
        model.fit(train_graph)
        assert model.num_rules() > 0

    def test_scores_in_unit_interval(self, train_graph):
        model = RuleN(min_support=1, min_confidence=0.0)
        model.fit(train_graph)
        model.set_context(train_graph)
        scores = model.score_many(train_graph.triples[:20])
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)

    def test_triple_with_supporting_path_outscores_random(self, train_graph):
        model = RuleN(min_support=1, min_confidence=0.0)
        model.fit(train_graph)
        model.set_context(train_graph)
        supported = max((model.score(t) for t in train_graph.triples[:50]), default=0.0)
        isolated = model.score(Triple(0, 0, 0))
        assert supported >= isolated

    def test_no_context_scores_zero(self, train_graph):
        model = RuleN(min_support=1, min_confidence=0.0)
        model.fit(train_graph)
        assert model.score(train_graph.triples[0]) == 0.0

    def test_rule_confidences_bounded(self, train_graph):
        model = RuleN(min_support=1, min_confidence=0.0)
        model.fit(train_graph)
        for rules in list(model.unary_rules.values()) + list(model.path_rules.values()):
            for confidence, _ in rules:
                assert 0.0 <= confidence <= 1.0


class TestGrailAndTACT:
    @pytest.fixture
    def small_train_graph(self, tiny_graph):
        return tiny_graph

    def test_grail_fit_and_score(self, small_train_graph):
        model = Grail(num_relations=3, embedding_dim=8, edge_dropout=0.0, seed=0)
        model.fit(small_train_graph, epochs=1)
        assert np.isfinite(model.score(Triple(0, 1, 2)))

    def test_grail_requires_context(self):
        model = Grail(num_relations=3, embedding_dim=8, seed=0)
        with pytest.raises(RuntimeError):
            model.score(Triple(0, 0, 1))

    def test_grail_uses_pruned_labeling(self):
        model = Grail(num_relations=3, embedding_dim=8, seed=0)
        assert model.gsm.improved_labeling is False

    def test_tact_has_more_parameters_than_grail(self):
        grail = Grail(num_relations=5, embedding_dim=8, seed=0)
        tact = TACT(num_relations=5, embedding_dim=8, seed=0)
        assert tact.num_parameters() > grail.num_parameters()

    def test_tact_fit_and_score(self, small_train_graph):
        model = TACT(num_relations=3, embedding_dim=8, edge_dropout=0.0, seed=0)
        model.fit(small_train_graph, epochs=1)
        assert np.isfinite(model.score(Triple(0, 1, 2)))

    def test_tact_correlation_branch_contributes(self, small_train_graph):
        model = TACT(num_relations=3, embedding_dim=8, edge_dropout=0.0, seed=0)
        model.set_context(small_train_graph)
        model.eval()
        full = model.score(Triple(0, 1, 2))
        structural_only = float(model.gsm.score(small_train_graph, Triple(0, 1, 2)).data)
        assert full != pytest.approx(structural_only)

    def test_tact_relation_context_vanishes_for_bridging_links(self, small_train_graph):
        # The pruned subgraph around a bridging-like link (two far-apart
        # entities) has no edges, so TACT's relation context must be zero —
        # the behaviour that makes TACT collapse on bridging links.
        model = TACT(num_relations=3, embedding_dim=8, edge_dropout=0.0, seed=0)
        subgraph = model.gsm.extract(small_train_graph, Triple(0, 0, 5))
        head_counts = model._subgraph_relation_counts(subgraph.edges, subgraph.head_index())
        tail_counts = model._subgraph_relation_counts(subgraph.edges, subgraph.tail_index())
        assert head_counts.sum() == 0
        assert tail_counts.sum() == 0

    def test_grail_score_many(self, small_train_graph):
        model = Grail(num_relations=3, embedding_dim=8, edge_dropout=0.0, seed=0)
        model.set_context(small_train_graph)
        model.eval()
        scores = model.score_many([Triple(0, 1, 2), Triple(0, 0, 1)])
        assert scores.shape == (2,)
