"""Serving-layer invariants: coalescing bit-identity, drain, faults, wire.

The load-bearing guarantee of :mod:`repro.serving` is that putting a
coalescer, a daemon and N concurrent clients between a model and its
scores changes **nothing** about the scores: every response is bit-identical
to calling ``model.score_many`` with the request's composition directly,
and ``rank`` responses equal :meth:`ShardWorkload.rank_item` exactly.
The tests here pin that — for every registered model, for arbitrary
interleavings/batch caps/budget timeouts (hypothesis), under injected
flush/request faults, and across both transports.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.datasets.benchmark import build_benchmark
from repro.eval.evaluator import Evaluator
from repro.eval.ranking import candidate_rng, filtered_candidates
from repro.kg.triple import Triple
from repro.registry import build_model, model_names, registered_models
from repro.resilience import install_fault_plan, reset_fault_state
from repro.serving import (CoalescerClosed, InProcessClient, RequestCoalescer,
                           ScoringService, ServiceOverloaded, ServingError,
                           SocketClient, handle_request, serve,
                           wait_until_serving)
from repro.shm import active_segments


@pytest.fixture(autouse=True)
def _clean_faults():
    reset_fault_state()
    yield
    reset_fault_state()


# --------------------------------------------------------------------- #
# coalescer unit tests on a synthetic scorer
# --------------------------------------------------------------------- #
def _composition_sensitive_scorer(calls):
    """A scorer whose outputs depend on the batch composition.

    ``score(t) = h*10000 + r*100 + t + 0.001*len(batch)`` — any fusion or
    splitting of a request changes its scores, so result equality proves
    the coalescer preserved each request's composition exactly.  Model
    ``"fus"`` is elementwise (composition-independent) and declared
    fusable; ``"raw"`` is composition-sensitive and not fusable.
    """
    def score_fn(model, triples):
        calls.append((model, tuple(triples)))
        base = [t.head * 10000 + t.relation * 100 + t.tail for t in triples]
        if model == "fus":
            return base
        return [value + 0.001 * len(triples) for value in base]
    return score_fn


def _expected(model, triples):
    base = [t.head * 10000 + t.relation * 100 + t.tail for t in triples]
    if model == "fus":
        return [float(v) for v in base]
    return [float(v + 0.001 * len(triples)) for v in base]


def _triples(spec):
    return [Triple(h, r, t) for h, r, t in spec]


class TestRequestCoalescer:
    def test_non_fusable_requests_keep_their_composition(self):
        calls = []
        coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                     max_batch=64, max_wait_ms=20.0,
                                     fusable=lambda m: m == "fus")
        requests = [_triples([(1, 0, 2), (3, 1, 4)]),
                    _triples([(5, 0, 6)]),
                    _triples([(7, 1, 8), (9, 0, 1), (2, 1, 3)])]
        futures = [coalescer.submit("raw", r) for r in requests]
        results = [f.result(timeout=10) for f in futures]
        coalescer.close()
        for request, result in zip(requests, results):
            assert result == _expected("raw", request)
        # every score_fn call was exactly one submitted request
        assert sorted(len(c[1]) for c in calls) == sorted(len(r) for r in requests)

    def test_fusable_requests_fuse_with_identical_scores(self):
        calls = []
        coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                     max_batch=64, max_wait_ms=50.0,
                                     fusable=lambda m: m == "fus")
        requests = [_triples([(i, 0, i + 1)]) for i in range(8)]
        futures = [coalescer.submit("fus", r) for r in requests]
        results = [f.result(timeout=10) for f in futures]
        coalescer.close()
        for request, result in zip(requests, results):
            assert result == _expected("fus", request)
        stats = coalescer.stats()
        assert stats["fused_requests"] > 0
        assert stats["flushes"] < len(requests)

    def test_fusion_respects_max_batch(self):
        calls = []
        coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                     max_batch=3, max_wait_ms=50.0,
                                     fusable=lambda m: True)
        futures = [coalescer.submit("fus", _triples([(i, 0, 0), (i, 1, 1)]))
                   for i in range(5)]
        for f in futures:
            f.result(timeout=10)
        coalescer.close()
        assert all(len(c[1]) <= 3 for c in calls)

    def test_scorer_exception_lands_on_the_future(self):
        def score_fn(model, triples):
            if model == "bad":
                raise ValueError("boom")
            return [0.0] * len(triples)
        coalescer = RequestCoalescer(score_fn, max_wait_ms=1.0)
        bad = coalescer.submit("bad", _triples([(0, 0, 0)]))
        good = coalescer.submit("ok", _triples([(1, 0, 1)]))
        with pytest.raises(ValueError, match="boom"):
            bad.result(timeout=10)
        assert good.result(timeout=10) == [0.0]
        coalescer.close()

    def test_close_drains_every_future_then_rejects(self):
        calls = []
        coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                     max_batch=4, max_wait_ms=200.0,
                                     fusable=lambda m: False)
        requests = [_triples([(i, 0, i)]) for i in range(25)]
        futures = [coalescer.submit("raw", r) for r in requests]
        coalescer.close()  # immediately: queued requests must still resolve
        for request, future in zip(requests, futures):
            assert future.done()
            assert future.result(timeout=0) == _expected("raw", request)
        with pytest.raises(CoalescerClosed):
            coalescer.submit("raw", _triples([(0, 0, 0)]))

    def test_drain_blocks_until_resolved(self):
        release = threading.Event()

        def slow_fn(model, triples):
            release.wait(timeout=10)
            return [1.0] * len(triples)

        coalescer = RequestCoalescer(slow_fn, max_wait_ms=0.0)
        future = coalescer.submit("m", _triples([(0, 0, 0)]))
        threading.Timer(0.05, release.set).start()
        coalescer.drain()
        assert future.done() and future.result() == [1.0]
        coalescer.close()


@settings(max_examples=25, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.sampled_from(["fus", "raw"]),
                  st.lists(st.tuples(st.integers(0, 9), st.integers(0, 3),
                                     st.integers(0, 9)),
                           min_size=1, max_size=5)),
        min_size=1, max_size=12),
    max_batch=st.integers(1, 8),
    max_wait_ms=st.sampled_from([0.0, 1.0, 25.0]),
)
def test_coalesced_scores_bit_identical_for_any_interleaving(
        requests, max_batch, max_wait_ms):
    """Arbitrary request streams, batch caps and budget timeouts never
    change a single score relative to per-request sequential scoring."""
    calls = []
    coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                 max_batch=max_batch, max_wait_ms=max_wait_ms,
                                 fusable=lambda m: m == "fus")
    try:
        futures = [(model, _triples(spec), coalescer.submit(model, _triples(spec)))
                   for model, spec in requests]
        for model, triples, future in futures:
            assert future.result(timeout=10) == _expected(model, triples)
    finally:
        coalescer.close()
    # non-fusable compositions were never altered
    for model, batch in calls:
        if model == "raw":
            assert tuple(batch) in {tuple(_triples(spec))
                                    for m, spec in requests if m == "raw"}


# --------------------------------------------------------------------- #
# fault drills (mirrors repro.resilience.chaos: degraded but correct)
# --------------------------------------------------------------------- #
class TestServingFaults:
    def test_flush_raise_degrades_to_per_request_with_identical_scores(self):
        install_fault_plan("serve_flush:0:raise")
        calls = []
        coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                     max_batch=64, max_wait_ms=20.0,
                                     fusable=lambda m: True)
        requests = [_triples([(i, 0, i + 1), (i, 1, i)]) for i in range(4)]
        futures = [coalescer.submit("raw", r) for r in requests]
        results = [f.result(timeout=10) for f in futures]
        coalescer.close()
        for request, result in zip(requests, results):
            assert result == _expected("raw", request)
        assert coalescer.stats()["degraded_flushes"] == 1

    def test_flush_hang_delays_but_scores_unchanged(self):
        install_fault_plan("serve_flush:0:hang:0.2")
        calls = []
        coalescer = RequestCoalescer(_composition_sensitive_scorer(calls),
                                     max_wait_ms=0.0)
        started = time.monotonic()
        future = coalescer.submit("raw", _triples([(2, 1, 3)]))
        result = future.result(timeout=10)
        elapsed = time.monotonic() - started
        coalescer.close()
        assert result == _expected("raw", _triples([(2, 1, 3)]))
        assert elapsed >= 0.2
        assert coalescer.stats()["degraded_flushes"] == 0

    def test_fault_on_degraded_path_resolves_futures_with_error(self):
        # Both the flush and its degraded retry are faulted: the futures
        # must resolve with the error — never hang, never drop.
        install_fault_plan("serve_flush:0:raise,serve_flush:0@1:raise")
        coalescer = RequestCoalescer(lambda m, ts: [0.0] * len(ts),
                                     max_wait_ms=0.0)
        future = coalescer.submit("m", _triples([(0, 0, 0)]))
        with pytest.raises(Exception):
            future.result(timeout=10)
        coalescer.close()


# --------------------------------------------------------------------- #
# service-level bit-identity on real registered models
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def serving_dataset():
    return build_benchmark("fb15k-237", "EQ", seed=0, scale=0.15)


@pytest.fixture(scope="module")
def full_service(serving_dataset):
    """Every registered model (untrained — scoring is deterministic either
    way, and bit-identity is about composition, not quality) behind one
    service with a tight latency budget."""
    graph = serving_dataset.split.evaluation_graph()
    models = {name: build_model(name, num_entities=graph.num_entities,
                                num_relations=graph.num_relations,
                                embedding_dim=8, seed=0)
              for name in model_names()}
    service = ScoringService(models, graph, max_batch=32, max_wait_ms=1.0)
    yield service
    service.close()


@pytest.mark.parametrize("name", model_names())
def test_every_registered_model_scores_bit_identical_through_service(
        name, serving_dataset, full_service):
    triples = list(serving_dataset.test_triples[:5])
    model = full_service._models[name]
    direct = [float(s) for s in model.score_many(triples)]
    served = full_service.score_many(name, triples)
    assert served == direct


def test_concurrent_clients_stay_bit_identical(serving_dataset, full_service):
    triples = list(serving_dataset.test_triples[:4])
    names = ["DEKG-ILP", "TransE", "Grail", "DistMult", "RotatE"]
    direct = {n: [float(s) for s in full_service._models[n].score_many(triples)]
              for n in names}
    results, errors = {}, []

    def query(n):
        try:
            results[n] = full_service.score_many(n, triples)
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=query, args=(n,)) for n in names]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert results == direct


def test_rank_matches_evaluator_rank_item(serving_dataset, full_service):
    client = InProcessClient(full_service)
    evaluator = Evaluator(serving_dataset, max_candidates=15, seed=0)
    for name in ("DEKG-ILP", "TransE", "Grail"):
        workload = evaluator._workload(list(serving_dataset.test_triples), name)
        for item in (0, 1, 3):
            triple_index, form_index = divmod(item, len(workload.forms))
            triple = workload.triples[triple_index]
            candidates = filtered_candidates(
                triple, workload.forms[form_index],
                entity_candidates=workload.entity_candidates,
                relation_candidates=workload.relation_candidates,
                known_facts=workload.known_facts,
                max_candidates=workload.max_candidates,
                rng=candidate_rng(workload.seed, triple_index, form_index))
            direct = workload.rank_item(full_service._models[name], item)
            served = client.rank(name, triple, candidates)
            assert served["rank"] == direct
            assert served["num_candidates"] == len(candidates)


def test_compare_equals_individual_scores(serving_dataset, full_service):
    triple = serving_dataset.test_triples[0]
    compared = full_service.compare(triple)
    assert set(compared) == set(model_names())
    for name, score in compared.items():
        direct = float(full_service._models[name].score_many([triple])[0])
        assert score == direct


def test_shared_provider_groups_by_signature(full_service):
    # DEKG-ILP/-R/-C share (2, True, 150); DEKG-ILP-N/Grail/TACT share
    # (2, False, 150): two shared providers, both multi-model.
    providers = {}
    for name in ("DEKG-ILP", "DEKG-ILP-R", "DEKG-ILP-C", "DEKG-ILP-N",
                 "Grail", "TACT"):
        providers.setdefault(
            full_service._models[name].subgraph_provider.extraction_signature,
            set()).add(id(full_service._models[name].subgraph_provider))
    assert all(len(ids) == 1 for ids in providers.values())
    assert len(providers) == 2
    stats = full_service.stats()
    shared = [p for p in stats["providers"] if p["shared"]]
    assert len(shared) == 2


def test_stats_shape_and_telemetry(full_service):
    stats = full_service.stats()
    assert stats["requests"] > 0
    assert set(stats["latency"]) == {"p50_ms", "p99_ms"}
    assert stats["latency"]["p50_ms"] is not None
    assert stats["coalescer"]["flushes"] > 0
    assert json.dumps(stats)  # the stats endpoint must be JSON-serializable


def test_request_fault_gives_degraded_response_then_recovers(full_service):
    install_fault_plan("serve_request:0:raise")
    degraded = handle_request(full_service, {"op": "ping"}, request_index=0)
    assert degraded == {"ok": False, "error": degraded["error"]}
    assert "degraded" in degraded["error"]
    healthy = handle_request(full_service, {"op": "ping"}, request_index=1)
    assert healthy == {"ok": True, "result": "pong"}


def test_unknown_op_and_unknown_model_are_clean_errors(full_service):
    client = InProcessClient(full_service)
    with pytest.raises(ServingError, match="unknown op"):
        client.request({"op": "frobnicate"})
    with pytest.raises(ServingError, match="not served"):
        client.score("NoSuchModel", 0, 0, 1)


# --------------------------------------------------------------------- #
# socket transport + daemon lifecycle
# --------------------------------------------------------------------- #
def test_socket_round_trip_and_shutdown_drain(serving_dataset, tmp_path):
    graph = serving_dataset.split.evaluation_graph()
    models = {"TransE": build_model("TransE", num_entities=graph.num_entities,
                                    num_relations=graph.num_relations,
                                    embedding_dim=8, seed=0)}
    stats_path = tmp_path / "serving_stats.json"
    service = ScoringService(models, graph, max_wait_ms=1.0,
                             stats_path=stats_path)
    server = serve(service, port=0)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.02}, daemon=True)
    thread.start()
    wait_until_serving(host, port)
    triples = list(serving_dataset.test_triples[:5])
    direct = [float(s) for s in models["TransE"].score_many(triples)]
    try:
        with SocketClient(host, port) as client:
            assert client.ping() == "pong"
            assert client.score_many("TransE", triples) == direct
            listing = client.models()
            assert listing[0]["name"] == "TransE"
            assert listing[0]["capabilities"]["batch_invariant_scoring"] is True
            assert client.shutdown_daemon() == "shutting down"
        thread.join(timeout=10)
        assert not thread.is_alive()
    finally:
        server.server_close()
    assert service.close() == stats_path or stats_path.exists()
    flushed = json.loads(stats_path.read_text())
    assert flushed["requests"] >= 1  # only scoring ops count as requests
    assert "coalescer" in flushed


# --------------------------------------------------------------------- #
# multi-process serving replicas (shared-memory pages)
# --------------------------------------------------------------------- #
class _SlowModel:
    """A deliberately slow scorer for backpressure tests."""

    name = "slow"

    def set_context(self, graph):
        pass

    def score_many(self, triples):
        time.sleep(0.15)
        return [0.0] * len(triples)

    def num_parameters(self):
        return 0


class TestServingReplicas:
    def _eval_models(self, graph, names):
        models = {name: build_model(name, num_entities=graph.num_entities,
                                    num_relations=graph.num_relations,
                                    embedding_dim=8, seed=0)
                  for name in names}
        for model in models.values():
            if hasattr(model, "eval"):
                model.eval()
        return models

    def test_replica_scores_bit_identical_and_segments_released(
            self, serving_dataset):
        graph = serving_dataset.split.evaluation_graph()
        models = self._eval_models(graph, ["DEKG-ILP", "TransE"])
        triples = list(serving_dataset.test_triples[:5])
        service = ScoringService(models, graph, max_wait_ms=1.0, replicas=2)
        try:
            for name in models:
                direct = [float(s) for s in models[name].score_many(triples)]
                served = InProcessClient(service).score_many(name, triples)
                assert served == direct, \
                    f"{name}: replica-served scores diverged from direct"
            replica_stats = service.stats()["replicas"]
            assert replica_stats["replicas"] == 2
            assert replica_stats["dispatched_batches"] >= 1
            assert set(replica_stats["models"]) == set(models)
        finally:
            service.close()
        listed = active_segments()
        assert listed in (None, []), f"leaked shm segments: {listed}"

    def test_training_mode_model_stays_in_process(self, serving_dataset):
        graph = serving_dataset.split.evaluation_graph()
        models = self._eval_models(graph, ["TransE"])
        trainee = build_model("DEKG-ILP", num_entities=graph.num_entities,
                              num_relations=graph.num_relations,
                              embedding_dim=8, seed=0)
        assert trainee.training
        models["DEKG-ILP"] = trainee
        triples = list(serving_dataset.test_triples[:3])
        with pytest.warns(RuntimeWarning, match="training mode"):
            service = ScoringService(models, graph, max_wait_ms=1.0, replicas=1)
        try:
            pool = service._replica_pool
            assert pool.serves("TransE")
            assert not pool.serves("DEKG-ILP")
            # The in-process path still serves the unshipped model, scores
            # unchanged.
            direct = [float(s) for s in trainee.score_many(triples)]
            assert InProcessClient(service).score_many("DEKG-ILP",
                                                       triples) == direct
        finally:
            service.close()

    def test_close_is_idempotent_and_late_close_safe(self, serving_dataset):
        graph = serving_dataset.split.evaluation_graph()
        models = self._eval_models(graph, ["TransE"])
        service = ScoringService(models, graph, max_wait_ms=1.0, replicas=1)
        service.close()
        service.close()
        listed = active_segments()
        assert listed in (None, []), f"leaked shm segments: {listed}"


# --------------------------------------------------------------------- #
# connection-level backpressure
# --------------------------------------------------------------------- #
class TestBackpressure:
    def test_bounded_queue_rejects_and_counts(self, serving_dataset):
        graph = serving_dataset.split.evaluation_graph()
        service = ScoringService({"slow": _SlowModel()}, graph,
                                 max_wait_ms=40.0, max_pending=1)
        try:
            first = service.submit("slow", [Triple(0, 0, 1)])
            rejected = 0
            for _ in range(4):
                try:
                    service.submit("slow", [Triple(0, 0, 1)])
                except ServiceOverloaded:
                    rejected += 1
            assert rejected >= 1, "bounded queue never rejected a request"
            assert first.result(timeout=10) == [0.0]
            assert service.stats()["coalescer"]["rejected_requests"] == rejected
            assert service.stats()["coalescer"]["max_pending"] == 1
        finally:
            service.close()

    def test_wire_response_carries_overloaded_code(self, serving_dataset):
        graph = serving_dataset.split.evaluation_graph()
        service = ScoringService({"slow": _SlowModel()}, graph,
                                 max_wait_ms=40.0, max_pending=1)
        try:
            service.submit("slow", [Triple(0, 0, 1)])
            response = None
            for _ in range(4):
                response = handle_request(
                    service, {"op": "score", "model": "slow",
                              "head": 0, "relation": 0, "tail": 1})
                if not response["ok"]:
                    break
            assert response is not None and not response["ok"]
            assert response["code"] == "overloaded"
            assert "retry with backoff" in response["error"]
        finally:
            service.close()

    def test_unbounded_by_default(self):
        coalescer = RequestCoalescer(lambda m, ts: [0.0] * len(ts))
        assert coalescer.max_pending is None
        coalescer.close()

    def test_invalid_max_pending_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            RequestCoalescer(lambda m, ts: [], max_pending=0)


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
def test_models_json_flag_emits_registry_listing(capsys):
    assert cli_main(["models", "--json"]) == 0
    listing = json.loads(capsys.readouterr().out)
    by_name = {row["name"]: row for row in listing}
    assert set(by_name) == set(model_names())
    assert by_name["TransE"]["capabilities"]["batch_invariant_scoring"] is True
    assert by_name["DEKG-ILP"]["capabilities"]["batch_invariant_scoring"] is False
    assert all(row["parameters"] >= 0 for row in listing)  # RuleN is parameter-free


def test_models_table_lists_batch_invariant_capability(capsys):
    assert cli_main(["models"]) == 0
    output = capsys.readouterr().out
    assert "batch-invariant" in output


def test_serve_requires_exactly_one_source():
    with pytest.raises(SystemExit, match="exactly one"):
        cli_main(["serve"])
    with pytest.raises(SystemExit, match="exactly one"):
        cli_main(["serve", "--config", "a.json", "--checkpoint", "b.npz"])


def test_registry_flags_match_measured_invariance():
    """The 9 elementwise scorers are flagged; subgraph/conv models are not."""
    flags = {name: spec.batch_invariant_scoring
             for name, spec in registered_models().items()}
    assert flags == {
        "DEKG-ILP": False, "DEKG-ILP-R": False, "DEKG-ILP-C": False,
        "DEKG-ILP-N": False, "TransE": True, "RotatE": True,
        "DistMult": True, "ConvE": False, "ComplEx": True, "HolE": True,
        "ProjE": True, "SimplE": True, "GEN": True, "RuleN": True,
        "Grail": False, "TACT": False,
    }
