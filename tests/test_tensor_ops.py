"""Unit tests for the autodiff Tensor: forward values and numerical gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, no_grad


def numerical_gradient(fn, value: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of one array."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = fn(value)
        flat[i] = original - epsilon
        lower = fn(value)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * epsilon)
    return grad


def check_gradient(build, value: np.ndarray, atol: float = 1e-5):
    """Compare autodiff gradient of ``build(Tensor)`` against finite differences."""
    tensor = Tensor(value.copy(), requires_grad=True)
    output = build(tensor)
    output.backward()
    expected = numerical_gradient(lambda arr: float(build(Tensor(arr)).data), value.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol)


class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0, 2.0]) + 5.0
        np.testing.assert_array_equal(out.data, [6.0, 7.0])

    def test_radd(self):
        out = 5.0 + Tensor([1.0, 2.0])
        np.testing.assert_array_equal(out.data, [6.0, 7.0])

    def test_sub(self):
        out = Tensor([3.0]) - Tensor([1.0])
        assert out.data[0] == 2.0

    def test_rsub(self):
        out = 10.0 - Tensor([3.0])
        assert out.data[0] == 7.0

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        np.testing.assert_array_equal(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        assert out.data[0] == 4.0

    def test_rtruediv(self):
        out = 8.0 / Tensor([2.0])
        assert out.data[0] == 4.0

    def test_neg(self):
        np.testing.assert_array_equal((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        assert (Tensor([3.0]) ** 2).data[0] == 9.0

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_array_equal((a @ b).data, np.array([[19, 22], [43, 50]], dtype=float))

    def test_matmul_vector(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        v = Tensor([1.0, 1.0])
        np.testing.assert_array_equal((a @ v).data, [3.0, 7.0])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        np.testing.assert_allclose(x.exp().log().data, x.data)

    def test_relu(self):
        np.testing.assert_array_equal(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_bounds(self):
        values = Tensor(np.linspace(-10, 10, 7)).sigmoid().data
        assert np.all(values > 0) and np.all(values < 1)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 5)
        np.testing.assert_allclose(Tensor(x).tanh().data, np.tanh(x))

    def test_sin_cos(self):
        x = np.linspace(0, np.pi, 5)
        np.testing.assert_allclose(Tensor(x).sin().data, np.sin(x))
        np.testing.assert_allclose(Tensor(x).cos().data, np.cos(x))

    def test_abs(self):
        np.testing.assert_array_equal(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_clamp_min(self):
        np.testing.assert_array_equal(Tensor([-2.0, 3.0]).clamp_min(0.0).data, [0.0, 3.0])

    def test_sum_axis(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(x.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_array_equal(x.sum(axis=1).data, [3.0, 7.0])

    def test_sum_keepdims(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean(self):
        assert Tensor([2.0, 4.0]).mean().item() == 3.0

    def test_mean_axis(self):
        x = Tensor([[1.0, 3.0], [5.0, 7.0]])
        np.testing.assert_array_equal(x.mean(axis=0).data, [3.0, 5.0])

    def test_norm(self):
        assert Tensor([3.0, 4.0]).norm().item() == pytest.approx(5.0)

    def test_reshape(self):
        assert Tensor(np.arange(6.0)).reshape(2, 3).shape == (2, 3)

    def test_reshape_tuple_argument(self):
        assert Tensor(np.arange(6.0)).reshape((3, 2)).shape == (3, 2)

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)

    def test_transpose(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_getitem_row(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(x[1].data, [3.0, 4.0, 5.0])

    def test_gather_rows(self):
        x = Tensor(np.arange(6.0).reshape(3, 2))
        out = x.gather_rows(np.array([2, 0]))
        np.testing.assert_array_equal(out.data, [[4.0, 5.0], [0.0, 1.0]])

    def test_concat(self):
        out = Tensor.concat([Tensor([[1.0]]), Tensor([[2.0]])], axis=0)
        np.testing.assert_array_equal(out.data, [[1.0], [2.0]])

    def test_stack(self):
        out = Tensor.stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])])
        assert out.shape == (2, 2)

    def test_item_and_len(self):
        assert Tensor([42.0]).item() == 42.0
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_detach_drops_graph(self):
        x = Tensor([1.0], requires_grad=True)
        assert not (x * 2).detach().requires_grad


class TestBackward:
    def test_add_gradient(self, rng):
        check_gradient(lambda t: (t + t * 2.0).sum(), rng.normal(size=(3, 2)))

    def test_mul_gradient(self, rng):
        check_gradient(lambda t: (t * t).sum(), rng.normal(size=(4,)))

    def test_div_gradient(self, rng):
        check_gradient(lambda t: (t / 3.0 + 2.0 / (t + 5.0)).sum(), rng.uniform(1, 2, size=(3,)))

    def test_matmul_gradient(self, rng):
        fixed = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(fixed)).sum(), rng.normal(size=(2, 3)))

    def test_matmul_right_gradient(self, rng):
        fixed = rng.normal(size=(2, 3))
        check_gradient(lambda t: (Tensor(fixed) @ t).sum(), rng.normal(size=(3, 2)))

    def test_exp_gradient(self, rng):
        check_gradient(lambda t: t.exp().sum(), rng.normal(size=(3,)))

    def test_log_gradient(self, rng):
        check_gradient(lambda t: t.log().sum(), rng.uniform(0.5, 2.0, size=(3,)))

    def test_sigmoid_gradient(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.normal(size=(3,)))

    def test_tanh_gradient(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.normal(size=(3,)))

    def test_sin_cos_gradient(self, rng):
        check_gradient(lambda t: (t.sin() * t.cos()).sum(), rng.normal(size=(4,)))

    def test_relu_gradient(self, rng):
        value = rng.normal(size=(5,))
        value[np.abs(value) < 1e-2] = 0.5  # keep away from the kink
        check_gradient(lambda t: t.relu().sum(), value)

    def test_abs_gradient(self):
        check_gradient(lambda t: t.abs().sum(), np.array([1.5, -2.5, 3.0]))

    def test_clamp_min_gradient(self):
        check_gradient(lambda t: t.clamp_min(0.0).sum(), np.array([1.5, -2.5, 3.0]))

    def test_pow_gradient(self, rng):
        check_gradient(lambda t: (t ** 3).sum(), rng.uniform(0.5, 1.5, size=(3,)))

    def test_sum_axis_gradient(self, rng):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), rng.normal(size=(3, 2)))

    def test_mean_gradient(self, rng):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), rng.normal(size=(2, 4)))

    def test_reshape_gradient(self, rng):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), rng.normal(size=(2, 3)))

    def test_transpose_gradient(self, rng):
        fixed = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t.T * Tensor(fixed)).sum(), rng.normal(size=(2, 3)))

    def test_getitem_gradient(self, rng):
        index = np.array([0, 2, 2])
        check_gradient(lambda t: (t.gather_rows(index) ** 2).sum(), rng.normal(size=(3, 2)))

    def test_concat_gradient(self, rng):
        value = rng.normal(size=(2, 2))

        def build(t):
            return (Tensor.concat([t, t * 2.0], axis=1) ** 2).sum()

        check_gradient(build, value)

    def test_stack_gradient(self, rng):
        value = rng.normal(size=(3,))

        def build(t):
            return (Tensor.stack([t, t * 3.0]) ** 2).sum()

        check_gradient(build, value)

    def test_broadcast_add_gradient(self, rng):
        fixed = rng.normal(size=(3, 4))
        check_gradient(lambda t: ((Tensor(fixed) + t) ** 2).sum(), rng.normal(size=(4,)))

    def test_broadcast_mul_gradient(self, rng):
        fixed = rng.normal(size=(3, 4))
        check_gradient(lambda t: ((Tensor(fixed) * t) ** 2).sum(), rng.normal(size=(1, 4)))

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_zero_grad(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(x.grad, [2.0, 2.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (x * 2).requires_grad

    def test_diamond_graph_gradient(self):
        x = Tensor([3.0], requires_grad=True)
        a = x * 2
        b = x + 1
        ((a * b)).sum().backward()
        # d/dx (2x * (x+1)) = 4x + 2 = 14
        assert x.grad[0] == pytest.approx(14.0)

    def test_float32_input_promoted(self):
        x = Tensor(np.ones(2, dtype=np.float32))
        assert x.data.dtype == np.float64

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(1.0)
